#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace sfp::common::metrics {

namespace {

/// Atomic fetch-add for doubles via a CAS loop (portable pre-C++20
/// libstdc++ atomic<double>::fetch_add).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value, std::memory_order_relaxed)) {
  }
}

std::vector<double> DefaultBounds() { return ExponentialBounds(1.0, 2.0, 16); }

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SFP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
  buckets_.resize(bounds_.size() + 1);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].Add(1);
  count_.Add(1);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const std::uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::uint64_t Histogram::BucketCount(std::size_t i) const {
  SFP_CHECK_LT(i, buckets_.size());
  return buckets_[i].Value();
}

std::vector<double> ExponentialBounds(double start, double factor, int count) {
  SFP_CHECK_GT(start, 0.0);
  SFP_CHECK_GT(factor, 1.0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds.empty() ? DefaultBounds()
                                                      : std::move(bounds));
  }
  return *slot;
}

std::vector<CounterSnapshot> Registry::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSnapshot> snapshots;
  snapshots.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshots.push_back({name, counter->Value()});
  }
  return snapshots;
}

std::vector<HistogramSnapshot> Registry::Histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> snapshots;
  snapshots.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snapshot;
    snapshot.name = name;
    snapshot.count = histogram->Count();
    snapshot.sum = histogram->Sum();
    snapshot.min = histogram->Min();
    snapshot.max = histogram->Max();
    snapshot.bounds = histogram->bounds();
    snapshot.bucket_counts.reserve(snapshot.bounds.size() + 1);
    for (std::size_t i = 0; i <= snapshot.bounds.size(); ++i) {
      snapshot.bucket_counts.push_back(histogram->BucketCount(i));
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

void Registry::WriteJson(std::ostream& os) const {
  const auto counters = Counters();
  const auto histograms = Histograms();

  os << "{\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << JsonEscape(counters[i].name) << "\": " << counters[i].value;
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i > 0) os << ", ";
    os << '"' << JsonEscape(h.name) << "\": {\"count\": " << h.count
       << ", \"sum\": " << JsonNumber(h.sum) << ", \"min\": " << JsonNumber(h.min)
       << ", \"max\": " << JsonNumber(h.max) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"le\": ";
      if (b < h.bounds.size()) {
        os << JsonNumber(h.bounds[b]);
      } else {
        os << "\"+inf\"";
      }
      os << ", \"count\": " << h.bucket_counts[b] << '}';
    }
    os << "]}";
  }
  os << "}}";
}

std::string Registry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace sfp::common::metrics
