#include "lp/model.h"

namespace sfp::lp {

VarId Model::AddVar(double lower, double upper, double objective, bool is_integer,
                    std::string name) {
  SFP_CHECK_MSG(lower <= upper, "variable with empty domain");
  Variable v;
  v.lower = lower;
  v.upper = upper;
  v.objective = objective;
  v.is_integer = is_integer;
  v.name = std::move(name);
  vars_.push_back(std::move(v));
  return static_cast<VarId>(vars_.size() - 1);
}

RowId Model::AddRow(std::vector<VarId> vars, std::vector<double> coeffs, Sense sense,
                    double rhs, std::string name) {
  SFP_CHECK_EQ(vars.size(), coeffs.size());
  for (VarId v : vars) {
    SFP_CHECK_GE(v, 0);
    SFP_CHECK_LT(v, num_vars());
  }
  Row r;
  r.vars = std::move(vars);
  r.coeffs = std::move(coeffs);
  r.sense = sense;
  r.rhs = rhs;
  r.name = std::move(name);
  rows_.push_back(std::move(r));
  return static_cast<RowId>(rows_.size() - 1);
}

void Model::AddRowCoefficient(RowId row, VarId var, double coeff) {
  SFP_CHECK_GE(row, 0);
  SFP_CHECK_LT(row, num_rows());
  SFP_CHECK_GE(var, 0);
  SFP_CHECK_LT(var, num_vars());
  Row& r = rows_[static_cast<std::size_t>(row)];
  r.vars.push_back(var);
  r.coeffs.push_back(coeff);
}

void Model::SetVarBounds(VarId var, double lower, double upper) {
  SFP_CHECK_MSG(lower <= upper, "variable with empty domain");
  auto& v = vars_[static_cast<std::size_t>(var)];
  v.lower = lower;
  v.upper = upper;
}

void Model::ReplaceRows(std::vector<Row> rows) {
  for (const Row& row : rows) {
    SFP_CHECK_EQ(row.vars.size(), row.coeffs.size());
    for (VarId v : row.vars) {
      SFP_CHECK_GE(v, 0);
      SFP_CHECK_LT(v, num_vars());
    }
  }
  rows_ = std::move(rows);
}

void Model::SetBranchPriority(VarId var, int priority) {
  vars_[static_cast<std::size_t>(var)].branch_priority = priority;
}

std::size_t Model::num_nonzeros() const {
  std::size_t nnz = 0;
  for (const auto& r : rows_) nnz += r.vars.size();
  return nnz;
}

std::vector<VarId> Model::IntegerVars() const {
  std::vector<VarId> ids;
  for (VarId v = 0; v < num_vars(); ++v) {
    if (vars_[static_cast<std::size_t>(v)].is_integer) ids.push_back(v);
  }
  return ids;
}

const char* ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kTimeLimit:
      return "time-limit";
    case SolveStatus::kFeasible:
      return "feasible";
  }
  return "unknown";
}

}  // namespace sfp::lp
