#include "lp/presolve.h"

#include <algorithm>
#include <cmath>

namespace sfp::lp {
namespace {

constexpr double kFeasTol = 1e-9;

/// Minimum/maximum possible activity of a row given variable bounds.
struct ActivityRange {
  double min = 0.0;
  double max = 0.0;
};

ActivityRange RowActivity(const Model& model, const Row& row) {
  ActivityRange range;
  for (std::size_t t = 0; t < row.vars.size(); ++t) {
    const Variable& var = model.var(row.vars[t]);
    const double c = row.coeffs[t];
    if (c == 0.0) continue;
    const double lo_term = c > 0 ? c * var.lower : c * var.upper;
    const double hi_term = c > 0 ? c * var.upper : c * var.lower;
    range.min += lo_term;  // may be -inf
    range.max += hi_term;  // may be +inf
  }
  return range;
}

/// Tightens one variable from a singleton row; returns false on
/// infeasibility.
bool ApplySingleton(Model& model, const Row& row, PresolveStats& stats) {
  // Find the single nonzero term (duplicates summed).
  VarId var = -1;
  double coeff = 0.0;
  for (std::size_t t = 0; t < row.vars.size(); ++t) {
    if (row.coeffs[t] == 0.0) continue;
    if (var == row.vars[t] || var < 0) {
      var = row.vars[t];
      coeff += row.coeffs[t];
    } else {
      return true;  // more than one distinct variable: not a singleton
    }
  }
  if (var < 0 || coeff == 0.0) return true;  // handled as empty elsewhere

  const Variable& v = model.var(var);
  double lo = v.lower;
  double hi = v.upper;
  const double bound = row.rhs / coeff;
  switch (row.sense) {
    case Sense::kLe:
      if (coeff > 0) {
        hi = std::min(hi, bound);
      } else {
        lo = std::max(lo, bound);
      }
      break;
    case Sense::kGe:
      if (coeff > 0) {
        lo = std::max(lo, bound);
      } else {
        hi = std::min(hi, bound);
      }
      break;
    case Sense::kEq:
      lo = std::max(lo, bound);
      hi = std::min(hi, bound);
      break;
  }
  if (v.is_integer) {
    lo = std::ceil(lo - kFeasTol);
    hi = std::floor(hi + kFeasTol);
  }
  if (lo > hi + kFeasTol) return false;
  if (lo != v.lower || hi != v.upper) {
    model.SetVarBounds(var, lo, std::max(lo, hi));
    ++stats.bounds_tightened;
  }
  return true;
}

/// True if `row` references at most one distinct variable with a
/// nonzero coefficient.
bool IsSingleton(const Row& row) {
  VarId seen = -1;
  for (std::size_t t = 0; t < row.vars.size(); ++t) {
    if (row.coeffs[t] == 0.0) continue;
    if (seen >= 0 && row.vars[t] != seen) return false;
    seen = row.vars[t];
  }
  return seen >= 0;
}

bool IsEmpty(const Row& row) {
  return std::all_of(row.coeffs.begin(), row.coeffs.end(),
                     [](double c) { return c == 0.0; });
}

bool EmptyRowFeasible(const Row& row) {
  switch (row.sense) {
    case Sense::kLe:
      return 0.0 <= row.rhs + kFeasTol;
    case Sense::kGe:
      return 0.0 >= row.rhs - kFeasTol;
    case Sense::kEq:
      return std::abs(row.rhs) <= kFeasTol;
  }
  return false;
}

}  // namespace

PresolveStats Presolve(Model& model) {
  PresolveStats stats;

  // Integer rounding of initial bounds.
  for (VarId v = 0; v < model.num_vars(); ++v) {
    const Variable& var = model.var(v);
    if (!var.is_integer) continue;
    const double lo = std::isfinite(var.lower) ? std::ceil(var.lower - kFeasTol) : var.lower;
    const double hi = std::isfinite(var.upper) ? std::floor(var.upper + kFeasTol) : var.upper;
    if (lo > hi + kFeasTol) {
      stats.infeasible = true;
      return stats;
    }
    if (lo != var.lower || hi != var.upper) {
      model.SetVarBounds(v, lo, std::max(lo, hi));
      ++stats.bounds_tightened;
    }
  }

  constexpr int kMaxRounds = 8;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    std::vector<Row> kept;
    kept.reserve(static_cast<std::size_t>(model.num_rows()));
    for (const Row& row : model.rows()) {
      if (IsEmpty(row)) {
        if (!EmptyRowFeasible(row)) {
          stats.infeasible = true;
          return stats;
        }
        ++stats.rows_removed;
        changed = true;
        continue;
      }
      if (IsSingleton(row)) {
        if (!ApplySingleton(model, row, stats)) {
          stats.infeasible = true;
          return stats;
        }
        ++stats.rows_removed;
        changed = true;
        continue;
      }
      const ActivityRange activity = RowActivity(model, row);
      bool redundant = false;
      switch (row.sense) {
        case Sense::kLe:
          if (activity.max <= row.rhs + kFeasTol) redundant = true;
          if (activity.min > row.rhs + kFeasTol) stats.infeasible = true;
          break;
        case Sense::kGe:
          if (activity.min >= row.rhs - kFeasTol) redundant = true;
          if (activity.max < row.rhs - kFeasTol) stats.infeasible = true;
          break;
        case Sense::kEq:
          if (activity.min > row.rhs + kFeasTol || activity.max < row.rhs - kFeasTol) {
            stats.infeasible = true;
          }
          break;
      }
      if (stats.infeasible) return stats;
      if (redundant) {
        ++stats.rows_removed;
        changed = true;
        continue;
      }
      kept.push_back(row);
    }
    if (changed) {
      model.ReplaceRows(std::move(kept));
    } else {
      break;
    }
  }
  return stats;
}

}  // namespace sfp::lp
