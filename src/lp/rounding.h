// Randomized rounding of LP-relaxation solutions (§V-B).
//
// A fractional value X.Y is rounded up to X+1 with probability Y and
// down to X with probability 1-Y, independently per variable. The
// expectation of each rounded variable therefore equals its LP value,
// which is the property the paper cites: E[objective after rounding] =
// LP objective. Structured, problem-aware rounding for SFC placement
// lives in controlplane/approx.cc; this module provides the generic
// per-variable primitive plus clamping to variable bounds.
#pragma once

#include <vector>

#include "common/rng.h"
#include "lp/model.h"

namespace sfp::lp {

/// Rounds every integer variable of `model` in `values` independently
/// at random (continuous variables pass through), then clamps to the
/// variable bounds. `values` must have one entry per model variable.
std::vector<double> RandomizedRound(const Model& model, const std::vector<double>& values,
                                    Rng& rng);

/// Deterministic nearest-integer rounding with bound clamping; used as
/// the final fallback when repeated randomized draws keep failing.
std::vector<double> NearestRound(const Model& model, const std::vector<double>& values);

}  // namespace sfp::lp
