#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace sfp::lp {
namespace {

constexpr double kInf = kInfinity;

bool IsFinite(double v) { return std::isfinite(v); }

}  // namespace

Simplex::Simplex(const Model& model, SimplexOptions options)
    : options_(options),
      num_rows_(model.num_rows()),
      num_struct_(model.num_vars()),
      num_total_(model.num_rows() + model.num_vars()),
      maximize_(model.maximize()) {
  BuildColumns(model);

  lower_.resize(num_total_);
  upper_.resize(num_total_);
  cost_.assign(num_total_, 0.0);
  rhs_.resize(num_rows_);

  for (VarId v = 0; v < num_struct_; ++v) {
    const Variable& var = model.var(v);
    lower_[v] = var.lower;
    upper_[v] = var.upper;
    cost_[v] = maximize_ ? -var.objective : var.objective;
  }
  for (RowId r = 0; r < num_rows_; ++r) {
    const Row& row = model.row(r);
    rhs_[r] = row.rhs;
    const std::int32_t slack = num_struct_ + r;
    switch (row.sense) {
      case Sense::kLe:
        lower_[slack] = 0.0;
        upper_[slack] = kInf;
        break;
      case Sense::kGe:
        lower_[slack] = -kInf;
        upper_[slack] = 0.0;
        break;
      case Sense::kEq:
        lower_[slack] = 0.0;
        upper_[slack] = 0.0;
        break;
    }
  }

  status_.assign(num_total_, VStatus::kAtLower);
  basis_.assign(num_rows_, 0);
  x_.assign(num_total_, 0.0);
}

void Simplex::BuildColumns(const Model& model) {
  columns_.resize(static_cast<std::size_t>(num_struct_));
  // Gather per-column entries; duplicate (row, var) pairs are summed.
  for (RowId r = 0; r < num_rows_; ++r) {
    const Row& row = model.row(r);
    for (std::size_t t = 0; t < row.vars.size(); ++t) {
      if (row.coeffs[t] == 0.0) continue;
      Column& col = columns_[static_cast<std::size_t>(row.vars[t])];
      if (!col.rows.empty() && col.rows.back() == r) {
        col.vals.back() += row.coeffs[t];
      } else {
        col.rows.push_back(r);
        col.vals.push_back(row.coeffs[t]);
      }
    }
  }
}

void Simplex::SetVarBounds(VarId var, double lower, double upper) {
  SFP_CHECK_GE(var, 0);
  SFP_CHECK_LT(var, num_struct_);
  SFP_CHECK_LE(lower, upper);
  lower_[var] = lower;
  upper_[var] = upper;
}

void Simplex::ResetBasis() { basis_valid_ = false; }

Simplex::BasisState Simplex::SaveBasis() const {
  BasisState state;
  state.basis = basis_;
  state.status.resize(status_.size());
  for (std::size_t v = 0; v < status_.size(); ++v) {
    state.status[v] = static_cast<std::uint8_t>(status_[v]);
  }
  return state;
}

void Simplex::RestoreBasis(const BasisState& state) {
  if (state.basis.size() != static_cast<std::size_t>(num_rows_) ||
      state.status.size() != static_cast<std::size_t>(num_total_)) {
    basis_valid_ = false;  // incompatible snapshot: cold start instead
    return;
  }
  basis_ = state.basis;
  for (std::size_t v = 0; v < state.status.size(); ++v) {
    status_[v] = static_cast<VStatus>(state.status[v]);
  }
  basis_valid_ = true;
  needs_refactor_ = true;
}

void Simplex::ResetBasisToSlacks() {
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    basis_[r] = num_struct_ + r;
    status_[num_struct_ + r] = VStatus::kBasic;
  }
  for (std::int32_t v = 0; v < num_struct_; ++v) {
    if (IsFinite(lower_[v])) {
      status_[v] = VStatus::kAtLower;
    } else if (IsFinite(upper_[v])) {
      status_[v] = VStatus::kAtUpper;
    } else {
      status_[v] = VStatus::kFreeNb;
    }
  }
  if (options_.use_dense_inverse) {
    binv_.assign(static_cast<std::size_t>(num_rows_) * num_rows_, 0.0);
    for (std::int32_t r = 0; r < num_rows_; ++r) {
      binv_[static_cast<std::size_t>(r) * num_rows_ + r] = 1.0;
    }
  } else {
    RefactorizeSparse();  // the slack basis is the identity: cannot fail
  }
  pivots_since_refactor_ = 0;
  basis_valid_ = true;
  needs_refactor_ = false;
}

void Simplex::SnapNonbasicToBounds() {
  for (std::int32_t v = 0; v < num_total_; ++v) {
    switch (status_[v]) {
      case VStatus::kBasic:
        break;
      case VStatus::kAtLower:
        if (IsFinite(lower_[v])) {
          x_[v] = lower_[v];
        } else if (IsFinite(upper_[v])) {
          status_[v] = VStatus::kAtUpper;
          x_[v] = upper_[v];
        } else {
          status_[v] = VStatus::kFreeNb;
          x_[v] = 0.0;
        }
        break;
      case VStatus::kAtUpper:
        if (IsFinite(upper_[v])) {
          x_[v] = upper_[v];
        } else if (IsFinite(lower_[v])) {
          status_[v] = VStatus::kAtLower;
          x_[v] = lower_[v];
        } else {
          status_[v] = VStatus::kFreeNb;
          x_[v] = 0.0;
        }
        break;
      case VStatus::kFreeNb:
        if (IsFinite(lower_[v]) || IsFinite(upper_[v])) {
          // Bounds were tightened since the variable went free.
          if (IsFinite(lower_[v])) {
            status_[v] = VStatus::kAtLower;
            x_[v] = lower_[v];
          } else {
            status_[v] = VStatus::kAtUpper;
            x_[v] = upper_[v];
          }
        } else {
          x_[v] = 0.0;
        }
        break;
    }
  }
}

void Simplex::ComputeBasicValues() {
  // residual = b - sum over nonbasic columns of A_j * x_j.
  std::vector<double> residual = rhs_;
  for (std::int32_t v = 0; v < num_struct_; ++v) {
    if (status_[v] == VStatus::kBasic || x_[v] == 0.0) continue;
    const Column& col = columns_[static_cast<std::size_t>(v)];
    for (std::size_t t = 0; t < col.rows.size(); ++t) {
      residual[static_cast<std::size_t>(col.rows[t])] -= col.vals[t] * x_[v];
    }
  }
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    const std::int32_t slack = num_struct_ + r;
    if (status_[slack] != VStatus::kBasic && x_[slack] != 0.0) {
      residual[static_cast<std::size_t>(r)] -= x_[slack];
    }
  }
  if (options_.use_dense_inverse) {
    // x_B = Binv * residual.
    for (std::int32_t p = 0; p < num_rows_; ++p) {
      const double* row = &binv_[static_cast<std::size_t>(p) * num_rows_];
      double acc = 0.0;
      for (std::int32_t r = 0; r < num_rows_; ++r) {
        acc += row[r] * residual[static_cast<std::size_t>(r)];
      }
      x_[static_cast<std::size_t>(basis_[p])] = acc;
    }
  } else {
    lu_.Ftran(residual);
    for (std::int32_t p = 0; p < num_rows_; ++p) {
      x_[static_cast<std::size_t>(basis_[p])] = residual[static_cast<std::size_t>(p)];
    }
  }
}

bool Simplex::Refactorize() {
  ++stats_.refactorizations;
  const bool ok =
      options_.use_dense_inverse ? RefactorizeDense() : RefactorizeSparse();
  if (ok) pivots_since_refactor_ = 0;
  return ok;
}

bool Simplex::RefactorizeSparse() {
  std::vector<SparseColumn> cols(static_cast<std::size_t>(num_rows_));
  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const std::int32_t var = basis_[p];
    SparseColumn& out = cols[static_cast<std::size_t>(p)];
    if (var < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(var)];
      out.rows = col.rows;
      out.vals = col.vals;
    } else {
      out.rows = {var - num_struct_};
      out.vals = {1.0};
    }
  }
  return lu_.Factorize(cols);
}

bool Simplex::RefactorizeDense() {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  std::vector<double> bmat(m * m, 0.0);
  for (std::size_t p = 0; p < m; ++p) {
    const std::int32_t var = basis_[p];
    if (var < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(var)];
      for (std::size_t t = 0; t < col.rows.size(); ++t) {
        bmat[static_cast<std::size_t>(col.rows[t]) * m + p] = col.vals[t];
      }
    } else {
      bmat[static_cast<std::size_t>(var - num_struct_) * m + p] = 1.0;
    }
  }
  std::vector<double> inv(m * m, 0.0);
  for (std::size_t r = 0; r < m; ++r) inv[r * m + r] = 1.0;

  // Gauss-Jordan with partial pivoting, applied to [bmat | inv].
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t pivot_row = k;
    double best = std::abs(bmat[k * m + k]);
    for (std::size_t r = k + 1; r < m; ++r) {
      const double cand = std::abs(bmat[r * m + k]);
      if (cand > best) {
        best = cand;
        pivot_row = r;
      }
    }
    if (best < 1e-11) return false;  // singular basis
    if (pivot_row != k) {
      for (std::size_t c = 0; c < m; ++c) {
        std::swap(bmat[pivot_row * m + c], bmat[k * m + c]);
        std::swap(inv[pivot_row * m + c], inv[k * m + c]);
      }
    }
    const double scale = 1.0 / bmat[k * m + k];
    for (std::size_t c = 0; c < m; ++c) {
      bmat[k * m + c] *= scale;
      inv[k * m + c] *= scale;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == k) continue;
      const double factor = bmat[r * m + k];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < m; ++c) {
        bmat[r * m + c] -= factor * bmat[k * m + c];
        inv[r * m + c] -= factor * inv[k * m + c];
      }
    }
  }
  binv_ = std::move(inv);
  return true;
}

void Simplex::Ftran(std::int32_t j, std::vector<double>& w) {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  w.assign(m, 0.0);
  if (options_.use_dense_inverse) {
    if (j < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(j)];
      for (std::size_t p = 0; p < m; ++p) {
        const double* row = &binv_[p * m];
        double acc = 0.0;
        for (std::size_t t = 0; t < col.rows.size(); ++t) {
          acc += row[static_cast<std::size_t>(col.rows[t])] * col.vals[t];
        }
        w[p] = acc;
      }
    } else {
      const std::size_t r = static_cast<std::size_t>(j - num_struct_);
      for (std::size_t p = 0; p < m; ++p) w[p] = binv_[p * m + r];
    }
  } else {
    if (j < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(j)];
      for (std::size_t t = 0; t < col.rows.size(); ++t) {
        w[static_cast<std::size_t>(col.rows[t])] = col.vals[t];
      }
    } else {
      w[static_cast<std::size_t>(j - num_struct_)] = 1.0;
    }
    lu_.Ftran(w);
  }
  for (std::size_t p = 0; p < m; ++p) {
    if (w[p] != 0.0) ++stats_.ftran_nnz;
  }
}

void Simplex::ComputeDuals(const std::vector<double>& cost, std::vector<double>& y) const {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  if (options_.use_dense_inverse) {
    y.assign(m, 0.0);
    for (std::size_t p = 0; p < m; ++p) {
      const double cb = cost[static_cast<std::size_t>(basis_[p])];
      if (cb == 0.0) continue;
      const double* row = &binv_[p * m];
      for (std::size_t r = 0; r < m; ++r) y[r] += cb * row[r];
    }
  } else {
    y.resize(m);
    for (std::size_t p = 0; p < m; ++p) {
      y[p] = cost[static_cast<std::size_t>(basis_[p])];
    }
    lu_.Btran(y);
  }
}

double Simplex::ReducedCost(std::int32_t j, const std::vector<double>& cost,
                            const std::vector<double>& y) const {
  double d = cost[static_cast<std::size_t>(j)];
  if (j < num_struct_) {
    const Column& col = columns_[static_cast<std::size_t>(j)];
    for (std::size_t t = 0; t < col.rows.size(); ++t) {
      d -= y[static_cast<std::size_t>(col.rows[t])] * col.vals[t];
    }
  } else {
    d -= y[static_cast<std::size_t>(j - num_struct_)];
  }
  return d;
}

Simplex::Entering Simplex::PriceEntering(const std::vector<double>& cost,
                                         const std::vector<double>& y,
                                         bool bland) const {
  Entering best;
  double best_score = options_.opt_tol;
  for (std::int32_t j = 0; j < num_total_; ++j) {
    const VStatus st = status_[j];
    if (st == VStatus::kBasic) continue;
    if (upper_[j] - lower_[j] <= 0.0) continue;  // fixed variable
    const double d = ReducedCost(j, cost, y);
    int direction = 0;
    if (st == VStatus::kAtLower && d < -options_.opt_tol) {
      direction = +1;
    } else if (st == VStatus::kAtUpper && d > options_.opt_tol) {
      direction = -1;
    } else if (st == VStatus::kFreeNb && std::abs(d) > options_.opt_tol) {
      direction = d < 0.0 ? +1 : -1;
    } else {
      continue;
    }
    if (bland) {  // first eligible index
      best.var = j;
      best.direction = direction;
      best.reduced_cost = d;
      return best;
    }
    const double score = std::abs(d);
    if (score > best_score) {
      best_score = score;
      best.var = j;
      best.direction = direction;
      best.reduced_cost = d;
    }
  }
  return best;
}

Simplex::RatioResult Simplex::RatioTest(const Entering& e, const std::vector<double>& w,
                                        bool phase1, bool bland) const {
  const double tol = options_.feas_tol;
  RatioResult result;
  double best_step = kInf;
  std::int32_t best_pos = -1;
  bool best_at_upper = false;
  double best_pivot_mag = 0.0;

  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const double wp = w[static_cast<std::size_t>(p)];
    if (std::abs(wp) < 1e-9) continue;
    const std::int32_t var = basis_[p];
    const double v = x_[static_cast<std::size_t>(var)];
    const double lo = lower_[static_cast<std::size_t>(var)];
    const double up = upper_[static_cast<std::size_t>(var)];
    const double rate = -e.direction * wp;  // change of this basic per unit step

    double step = kInf;
    bool at_upper = false;
    if (phase1 && v < lo - tol) {
      // Infeasible below: blocks only when climbing back to its lower bound.
      if (rate > 0.0) {
        step = (lo - v) / rate;
        at_upper = false;
      }
    } else if (phase1 && v > up + tol) {
      // Infeasible above: blocks only when descending to its upper bound.
      if (rate < 0.0) {
        step = (v - up) / (-rate);
        at_upper = true;
      }
    } else {
      if (rate > 0.0 && IsFinite(up)) {
        step = (up - v) / rate;
        at_upper = true;
      } else if (rate < 0.0 && IsFinite(lo)) {
        step = (v - lo) / (-rate);
        at_upper = false;
      }
    }
    if (step == kInf) continue;
    if (step < 0.0) step = 0.0;  // numerical noise on degenerate bases

    bool take = false;
    if (step < best_step - 1e-10) {
      take = true;
    } else if (step < best_step + 1e-10) {
      if (bland) {
        take = best_pos < 0 || var < basis_[best_pos];
      } else {
        take = std::abs(wp) > best_pivot_mag;  // stability tie-break
      }
    }
    if (take) {
      best_step = step;
      best_pos = p;
      best_at_upper = at_upper;
      best_pivot_mag = std::abs(wp);
    }
  }

  // The entering variable itself can flip to its opposite bound.
  const double span = upper_[static_cast<std::size_t>(e.var)] -
                      lower_[static_cast<std::size_t>(e.var)];
  const bool flip_possible = status_[static_cast<std::size_t>(e.var)] != VStatus::kFreeNb &&
                             IsFinite(span);
  if (flip_possible && span < best_step) {
    result.step = span;
    result.leaving_pos = -1;
    return result;
  }
  if (best_pos < 0) {
    result.unbounded = true;
    return result;
  }
  result.step = best_step;
  result.leaving_pos = best_pos;
  result.leaving_at_upper = best_at_upper;
  return result;
}

void Simplex::ApplyStep(const Entering& e, const std::vector<double>& w,
                        const RatioResult& r) {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  const double step = r.step;
  // Move all basic variables.
  if (step != 0.0) {
    for (std::size_t p = 0; p < m; ++p) {
      if (w[p] == 0.0) continue;
      x_[static_cast<std::size_t>(basis_[p])] -= e.direction * w[p] * step;
    }
  }
  const std::size_t j = static_cast<std::size_t>(e.var);
  x_[j] += e.direction * step;

  if (r.leaving_pos < 0) {
    // Bound flip.
    status_[j] = e.direction > 0 ? VStatus::kAtUpper : VStatus::kAtLower;
    x_[j] = e.direction > 0 ? upper_[j] : lower_[j];
    return;
  }

  const std::size_t p = static_cast<std::size_t>(r.leaving_pos);
  const std::int32_t leaving = basis_[p];
  status_[static_cast<std::size_t>(leaving)] =
      r.leaving_at_upper ? VStatus::kAtUpper : VStatus::kAtLower;
  x_[static_cast<std::size_t>(leaving)] = r.leaving_at_upper
                                              ? upper_[static_cast<std::size_t>(leaving)]
                                              : lower_[static_cast<std::size_t>(leaving)];
  basis_[p] = e.var;
  status_[j] = VStatus::kBasic;

  bool update_ok = true;
  if (options_.use_dense_inverse) {
    // Product-form update of the dense inverse: row p is scaled by
    // 1/w_p and eliminated from every other row.
    const double pivot = w[p];
    double* prow = &binv_[p * m];
    const double inv_pivot = 1.0 / pivot;
    for (std::size_t c = 0; c < m; ++c) prow[c] *= inv_pivot;
    for (std::size_t q = 0; q < m; ++q) {
      if (q == p) continue;
      const double factor = w[q];
      if (factor == 0.0) continue;
      double* qrow = &binv_[q * m];
      for (std::size_t c = 0; c < m; ++c) qrow[c] -= factor * prow[c];
    }
  } else {
    update_ok = lu_.Update(r.leaving_pos, w);
  }

  if (!update_ok || ++pivots_since_refactor_ >= options_.refactor_interval) {
    if (!Refactorize()) {
      SFP_LOG_WARN << "singular basis during refactorization; resetting";
      ResetBasisToSlacks();
      SnapNonbasicToBounds();
    }
    ComputeBasicValues();
  }
}

double Simplex::TotalInfeasibility() const {
  double total = 0.0;
  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const std::size_t var = static_cast<std::size_t>(basis_[p]);
    const double v = x_[var];
    if (v < lower_[var]) total += lower_[var] - v;
    if (v > upper_[var]) total += v - upper_[var];
  }
  return total;
}

void Simplex::BuildPhase1Cost(std::vector<double>& cost) const {
  cost.assign(static_cast<std::size_t>(num_total_), 0.0);
  const double tol = options_.feas_tol;
  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const std::size_t var = static_cast<std::size_t>(basis_[p]);
    const double v = x_[var];
    if (v < lower_[var] - tol) {
      cost[var] = -1.0;  // wants to increase
    } else if (v > upper_[var] + tol) {
      cost[var] = +1.0;  // wants to decrease
    }
  }
}

SolveStatus Simplex::Iterate(const std::vector<double>& cost, bool phase1) {
  std::vector<double> working_cost;
  std::vector<double> y;
  std::vector<double> w;
  int stall = 0;
  bool bland = false;
  double last_progress_metric = phase1 ? TotalInfeasibility() : kInf;

  for (;;) {
    if (stats_.iterations - iterations_at_solve_start_ >= options_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }

    const std::vector<double>* active_cost = &cost;
    if (phase1) {
      if (TotalInfeasibility() <= options_.feas_tol * (num_rows_ + 1)) {
        return SolveStatus::kOptimal;
      }
      BuildPhase1Cost(working_cost);
      active_cost = &working_cost;
    }

    ComputeDuals(*active_cost, y);
    const Entering e = PriceEntering(*active_cost, y, bland);
    if (e.var < 0) {
      if (phase1) {
        return TotalInfeasibility() <= options_.feas_tol * (num_rows_ + 1)
                   ? SolveStatus::kOptimal
                   : SolveStatus::kInfeasible;
      }
      return SolveStatus::kOptimal;
    }

    Ftran(e.var, w);
    const RatioResult r = RatioTest(e, w, phase1, bland);
    if (r.unbounded) {
      // Phase 1's objective is bounded below by zero, so an unbounded
      // ray here means numerical trouble; report infeasible.
      return phase1 ? SolveStatus::kInfeasible : SolveStatus::kUnbounded;
    }
    ApplyStep(e, w, r);
    ++stats_.iterations;
    if (phase1) ++stats_.phase1_iterations;

    // Anti-cycling: switch to Bland's rule during long degenerate runs.
    double metric;
    if (phase1) {
      metric = TotalInfeasibility();
    } else {
      metric = 0.0;
      for (std::int32_t v = 0; v < num_total_; ++v) metric += cost[static_cast<std::size_t>(v)] * x_[static_cast<std::size_t>(v)];
    }
    if (metric < last_progress_metric - 1e-10) {
      last_progress_metric = metric;
      stall = 0;
      bland = false;
    } else if (++stall > options_.bland_trigger) {
      bland = true;
    }
  }
}

Solution Simplex::Solve() {
  Solution solution;
  iterations_at_solve_start_ = stats_.iterations;
  if (num_rows_ == 0 && num_struct_ == 0) {
    solution.status = SolveStatus::kOptimal;
    return solution;
  }
  if (!basis_valid_) {
    ResetBasisToSlacks();
  } else if (needs_refactor_) {
    // A restored snapshot: factorize it; a singular one (stale numerics
    // after bound changes) falls back to the slack basis.
    if (Refactorize()) {
      needs_refactor_ = false;
    } else {
      ResetBasisToSlacks();
    }
  }
  SnapNonbasicToBounds();
  ComputeBasicValues();

  SolveStatus status = Iterate(cost_, /*phase1=*/true);
  if (status == SolveStatus::kOptimal) {
    status = Iterate(cost_, /*phase1=*/false);
  }

  solution.status = status;
  if (status == SolveStatus::kOptimal || status == SolveStatus::kIterationLimit) {
    solution.values.assign(x_.begin(), x_.begin() + num_struct_);
    double obj = 0.0;
    for (std::int32_t v = 0; v < num_struct_; ++v) {
      obj += cost_[static_cast<std::size_t>(v)] * x_[static_cast<std::size_t>(v)];
    }
    solution.objective = maximize_ ? -obj : obj;
  }
  return solution;
}

}  // namespace sfp::lp
