#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace sfp::lp {
namespace {

constexpr double kInf = kInfinity;

bool IsFinite(double v) { return std::isfinite(v); }

}  // namespace

Simplex::Simplex(const Model& model, SimplexOptions options)
    : options_(options),
      num_rows_(model.num_rows()),
      num_struct_(model.num_vars()),
      num_total_(model.num_rows() + model.num_vars()),
      maximize_(model.maximize()) {
  BuildColumns(model);

  lower_.resize(num_total_);
  upper_.resize(num_total_);
  cost_.assign(num_total_, 0.0);
  rhs_.resize(num_rows_);

  for (VarId v = 0; v < num_struct_; ++v) {
    const Variable& var = model.var(v);
    lower_[v] = var.lower;
    upper_[v] = var.upper;
    cost_[v] = maximize_ ? -var.objective : var.objective;
  }
  for (RowId r = 0; r < num_rows_; ++r) {
    const Row& row = model.row(r);
    rhs_[r] = row.rhs;
    const std::int32_t slack = num_struct_ + r;
    switch (row.sense) {
      case Sense::kLe:
        lower_[slack] = 0.0;
        upper_[slack] = kInf;
        break;
      case Sense::kGe:
        lower_[slack] = -kInf;
        upper_[slack] = 0.0;
        break;
      case Sense::kEq:
        lower_[slack] = 0.0;
        upper_[slack] = 0.0;
        break;
    }
  }

  status_.assign(num_total_, VStatus::kAtLower);
  basis_.assign(num_rows_, 0);
  x_.assign(num_total_, 0.0);
}

void Simplex::BuildColumns(const Model& model) {
  columns_.resize(static_cast<std::size_t>(num_struct_));
  // Gather per-column entries; duplicate (row, var) pairs are summed.
  for (RowId r = 0; r < num_rows_; ++r) {
    const Row& row = model.row(r);
    for (std::size_t t = 0; t < row.vars.size(); ++t) {
      if (row.coeffs[t] == 0.0) continue;
      Column& col = columns_[static_cast<std::size_t>(row.vars[t])];
      if (!col.rows.empty() && col.rows.back() == r) {
        col.vals.back() += row.coeffs[t];
      } else {
        col.rows.push_back(r);
        col.vals.push_back(row.coeffs[t]);
      }
    }
  }
}

void Simplex::SetVarBounds(VarId var, double lower, double upper) {
  SFP_CHECK_GE(var, 0);
  SFP_CHECK_LT(var, num_struct_);
  SFP_CHECK_LE(lower, upper);
  if (!options_.incremental || fixed_dirty_ || pricing_dirty_) {
    lower_[var] = lower;
    upper_[var] = upper;
    return;
  }
  // Keep the fixed-column compression state in sync with the edit.
  const std::size_t v = static_cast<std::size_t>(var);
  const bool basic = status_[v] == VStatus::kBasic;
  const bool was_fixed = Fixed(var);
  if (!basic && was_fixed) AddFixedContribution(var, x_[v], -1.0);
  lower_[v] = lower;
  upper_[v] = upper;
  if (basic) return;  // ApplyStep files the contribution if it leaves fixed
  if (Fixed(var)) {
    status_[v] = VStatus::kAtLower;
    x_[v] = lower;
    AddFixedContribution(var, lower, +1.0);
    if (!was_fixed && in_pricing_list_[v]) ++pricing_dead_;
  } else if (was_fixed) {
    if (in_pricing_list_[v]) {
      --pricing_dead_;
    } else {
      // Unfixed after being compacted out of the pricing list: the
      // list is no longer a superset of the candidates.
      pricing_dirty_ = true;
      fixed_dirty_ = true;
    }
  }
}

VarId Simplex::AddColumn(double lower, double upper, double objective,
                         std::span<const RowId> rows,
                         std::span<const double> coeffs) {
  SFP_CHECK_LE(lower, upper);
  SFP_CHECK_EQ(rows.size(), coeffs.size());
  const std::int32_t v = num_struct_;

  Column col;
  {
    std::vector<std::pair<std::int32_t, double>> entries;
    entries.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      SFP_CHECK_GE(rows[i], 0);
      SFP_CHECK_LT(rows[i], num_rows_);
      if (coeffs[i] != 0.0) entries.emplace_back(rows[i], coeffs[i]);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [r, c] : entries) {
      if (!col.rows.empty() && col.rows.back() == r) {
        col.vals.back() += c;
      } else {
        col.rows.push_back(r);
        col.vals.push_back(c);
      }
    }
  }
  columns_.push_back(std::move(col));

  // Internal layout is [struct | slacks]: the new column slots in just
  // before the slacks (O(rows) shifts), and every slack id moves up by
  // one. The basis *set* is untouched, so the LU factors stay valid.
  const auto pos = static_cast<std::ptrdiff_t>(v);
  lower_.insert(lower_.begin() + pos, lower);
  upper_.insert(upper_.begin() + pos, upper);
  cost_.insert(cost_.begin() + pos, maximize_ ? -objective : objective);
  VStatus st = VStatus::kFreeNb;
  double xv = 0.0;
  if (IsFinite(lower)) {
    st = VStatus::kAtLower;
    xv = lower;
  } else if (IsFinite(upper)) {
    st = VStatus::kAtUpper;
    xv = upper;
  }
  status_.insert(status_.begin() + pos, st);
  x_.insert(x_.begin() + pos, xv);
  for (std::int32_t& b : basis_) {
    if (b >= v) ++b;
  }
  ++num_struct_;
  ++num_total_;

  if (options_.incremental) {
    if (fixed_dirty_ || pricing_dirty_) {
      in_pricing_list_.push_back(0);  // rebuilt at the next Solve()
    } else if (Fixed(v)) {
      AddFixedContribution(v, xv, +1.0);
      in_pricing_list_.push_back(0);
    } else {
      pricing_list_.push_back(v);  // largest id: list stays ascending
      in_pricing_list_.push_back(1);
    }
  }
  return v;
}

RowId Simplex::AddRow(Sense sense, double rhs, std::span<const VarId> vars,
                      std::span<const double> coeffs) {
  SFP_CHECK_EQ(vars.size(), coeffs.size());
  const std::int32_t r = num_rows_;
  rhs_.push_back(rhs);
  double slack_lo = 0.0;
  double slack_up = 0.0;
  switch (sense) {
    case Sense::kLe:
      slack_up = kInf;
      break;
    case Sense::kGe:
      slack_lo = -kInf;
      break;
    case Sense::kEq:
      break;
  }
  lower_.push_back(slack_lo);
  upper_.push_back(slack_up);
  cost_.push_back(0.0);
  status_.push_back(VStatus::kBasic);
  x_.push_back(0.0);

  for (std::size_t i = 0; i < vars.size(); ++i) {
    SFP_CHECK_GE(vars[i], 0);
    SFP_CHECK_LT(vars[i], num_struct_);
    if (coeffs[i] == 0.0) continue;
    Column& col = columns_[static_cast<std::size_t>(vars[i])];
    if (!col.rows.empty() && col.rows.back() == r) {
      col.vals.back() += coeffs[i];  // duplicate var in this row
    } else {
      col.rows.push_back(r);
      col.vals.push_back(coeffs[i]);
    }
  }

  // The new row's slack enters the basis, which keeps the basis square
  // and primal statuses coherent but invalidates the factorization.
  basis_.push_back(num_struct_ + r);
  ++num_rows_;
  ++num_total_;
  if (basis_valid_) needs_refactor_ = true;

  if (options_.incremental) {
    double activity = 0.0;
    if (!fixed_dirty_ && !pricing_dirty_) {
      for (std::size_t i = 0; i < vars.size(); ++i) {
        const std::size_t v = static_cast<std::size_t>(vars[i]);
        if (Fixed(vars[i]) && status_[v] != VStatus::kBasic) {
          activity += coeffs[i] * x_[v];
        }
      }
    }
    fixed_activity_.push_back(activity);
  }
  return r;
}

void Simplex::ResetBasis() { basis_valid_ = false; }

Simplex::BasisState Simplex::SaveBasis() const {
  BasisState state;
  state.basis = basis_;
  state.status.resize(status_.size());
  for (std::size_t v = 0; v < status_.size(); ++v) {
    state.status[v] = static_cast<std::uint8_t>(status_[v]);
  }
  state.num_struct = num_struct_;
  state.num_rows = num_rows_;
  return state;
}

void Simplex::RestoreBasis(const BasisState& state) {
  // Unstamped snapshots (num_struct < 0) keep the legacy contract:
  // exact current shape or cold start. Stamped snapshots may be
  // *smaller* than this instance (taken before AddColumn/AddRow grew
  // it); appended variables default to a bound and appended rows'
  // slacks join the basis.
  const std::int32_t ns = state.num_struct >= 0 ? state.num_struct : num_struct_;
  const std::int32_t nr = state.num_rows >= 0 ? state.num_rows : num_rows_;
  if (ns > num_struct_ || nr > num_rows_ ||
      state.basis.size() != static_cast<std::size_t>(nr) ||
      state.status.size() != static_cast<std::size_t>(ns + nr)) {
    basis_valid_ = false;  // incompatible snapshot: cold start instead
    return;
  }
  for (std::int32_t v = 0; v < ns; ++v) {
    status_[static_cast<std::size_t>(v)] =
        static_cast<VStatus>(state.status[static_cast<std::size_t>(v)]);
  }
  for (std::int32_t v = ns; v < num_struct_; ++v) {
    if (IsFinite(lower_[static_cast<std::size_t>(v)])) {
      status_[static_cast<std::size_t>(v)] = VStatus::kAtLower;
    } else if (IsFinite(upper_[static_cast<std::size_t>(v)])) {
      status_[static_cast<std::size_t>(v)] = VStatus::kAtUpper;
    } else {
      status_[static_cast<std::size_t>(v)] = VStatus::kFreeNb;
    }
  }
  for (std::int32_t r = 0; r < nr; ++r) {
    status_[static_cast<std::size_t>(num_struct_ + r)] =
        static_cast<VStatus>(state.status[static_cast<std::size_t>(ns + r)]);
  }
  for (std::int32_t r = nr; r < num_rows_; ++r) {
    status_[static_cast<std::size_t>(num_struct_ + r)] = VStatus::kBasic;
  }
  for (std::int32_t p = 0; p < nr; ++p) {
    const std::int32_t vid = state.basis[static_cast<std::size_t>(p)];
    basis_[static_cast<std::size_t>(p)] =
        vid < ns ? vid : num_struct_ + (vid - ns);
  }
  for (std::int32_t p = nr; p < num_rows_; ++p) {
    basis_[static_cast<std::size_t>(p)] = num_struct_ + p;
  }
  basis_valid_ = true;
  needs_refactor_ = true;
  if (options_.incremental) {
    // Statuses changed wholesale; rebuild the compression state.
    fixed_dirty_ = true;
    pricing_dirty_ = true;
  }
}

void Simplex::ResetBasisToSlacks() {
  ++basis_epoch_;
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    basis_[r] = num_struct_ + r;
    status_[num_struct_ + r] = VStatus::kBasic;
  }
  for (std::int32_t v = 0; v < num_struct_; ++v) {
    if (IsFinite(lower_[v])) {
      status_[v] = VStatus::kAtLower;
    } else if (IsFinite(upper_[v])) {
      status_[v] = VStatus::kAtUpper;
    } else {
      status_[v] = VStatus::kFreeNb;
    }
  }
  if (options_.use_dense_inverse) {
    binv_.assign(static_cast<std::size_t>(num_rows_) * num_rows_, 0.0);
    for (std::int32_t r = 0; r < num_rows_; ++r) {
      binv_[static_cast<std::size_t>(r) * num_rows_ + r] = 1.0;
    }
  } else {
    RefactorizeSparse();  // the slack basis is the identity: cannot fail
  }
  pivots_since_refactor_ = 0;
  basis_valid_ = true;
  needs_refactor_ = false;
  if (options_.incremental) RecomputeFixedState();
}

void Simplex::RecomputeFixedState() {
  fixed_activity_.assign(static_cast<std::size_t>(num_rows_), 0.0);
  fixed_obj_ = 0.0;
  pricing_list_.clear();
  in_pricing_list_.assign(static_cast<std::size_t>(num_struct_), 0);
  pricing_dead_ = 0;
  for (std::int32_t v = 0; v < num_struct_; ++v) {
    if (Fixed(v) && status_[static_cast<std::size_t>(v)] != VStatus::kBasic) {
      status_[static_cast<std::size_t>(v)] = VStatus::kAtLower;
      x_[static_cast<std::size_t>(v)] = lower_[static_cast<std::size_t>(v)];
      AddFixedContribution(v, x_[static_cast<std::size_t>(v)], +1.0);
    } else {
      pricing_list_.push_back(v);
      in_pricing_list_[static_cast<std::size_t>(v)] = 1;
    }
  }
  pricing_dirty_ = false;
  fixed_dirty_ = false;
}

void Simplex::RebuildPricingList() { RecomputeFixedState(); }

void Simplex::CompactPricingList() {
  std::vector<std::int32_t> kept;
  kept.reserve(pricing_list_.size());
  for (std::int32_t v : pricing_list_) {
    // Keep nonfixed vars and fixed *basic* vars (the latter may leave
    // the basis later and must then be priceable again on unfix).
    if (!Fixed(v) || status_[static_cast<std::size_t>(v)] == VStatus::kBasic) {
      kept.push_back(v);
    } else {
      in_pricing_list_[static_cast<std::size_t>(v)] = 0;
    }
  }
  pricing_list_ = std::move(kept);
  pricing_dead_ = 0;
}

void Simplex::AddFixedContribution(std::int32_t v, double value, double sign) {
  if (value == 0.0) return;
  const Column& col = columns_[static_cast<std::size_t>(v)];
  const double scaled = sign * value;
  for (std::size_t t = 0; t < col.rows.size(); ++t) {
    fixed_activity_[static_cast<std::size_t>(col.rows[t])] += col.vals[t] * scaled;
  }
  fixed_obj_ += cost_[static_cast<std::size_t>(v)] * scaled;
}

void Simplex::SnapNonbasicToBounds() {
  const auto snap = [&](std::int32_t v) {
    switch (status_[v]) {
      case VStatus::kBasic:
        break;
      case VStatus::kAtLower:
        if (IsFinite(lower_[v])) {
          x_[v] = lower_[v];
        } else if (IsFinite(upper_[v])) {
          status_[v] = VStatus::kAtUpper;
          x_[v] = upper_[v];
        } else {
          status_[v] = VStatus::kFreeNb;
          x_[v] = 0.0;
        }
        break;
      case VStatus::kAtUpper:
        if (IsFinite(upper_[v])) {
          x_[v] = upper_[v];
        } else if (IsFinite(lower_[v])) {
          status_[v] = VStatus::kAtLower;
          x_[v] = lower_[v];
        } else {
          status_[v] = VStatus::kFreeNb;
          x_[v] = 0.0;
        }
        break;
      case VStatus::kFreeNb:
        if (IsFinite(lower_[v]) || IsFinite(upper_[v])) {
          // Bounds were tightened since the variable went free.
          if (IsFinite(lower_[v])) {
            status_[v] = VStatus::kAtLower;
            x_[v] = lower_[v];
          } else {
            status_[v] = VStatus::kAtUpper;
            x_[v] = upper_[v];
          }
        } else {
          x_[v] = 0.0;
        }
        break;
    }
  };
  if (IncActive()) {
    // Fixed nonbasic variables were snapped when they became fixed;
    // only the pricing candidates and the slacks can have moved.
    for (std::int32_t v : pricing_list_) snap(v);
    for (std::int32_t v = num_struct_; v < num_total_; ++v) snap(v);
  } else {
    for (std::int32_t v = 0; v < num_total_; ++v) snap(v);
  }
}

void Simplex::ComputeBasicValues() {
  // residual = b - sum over nonbasic columns of A_j * x_j.
  std::vector<double> residual;
  if (IncActive()) {
    residual.resize(static_cast<std::size_t>(num_rows_));
    for (std::int32_t r = 0; r < num_rows_; ++r) {
      residual[static_cast<std::size_t>(r)] =
          rhs_[static_cast<std::size_t>(r)] - fixed_activity_[static_cast<std::size_t>(r)];
    }
    for (std::int32_t v : pricing_list_) {
      if (status_[static_cast<std::size_t>(v)] == VStatus::kBasic || Fixed(v) ||
          x_[static_cast<std::size_t>(v)] == 0.0) {
        continue;
      }
      const Column& col = columns_[static_cast<std::size_t>(v)];
      for (std::size_t t = 0; t < col.rows.size(); ++t) {
        residual[static_cast<std::size_t>(col.rows[t])] -=
            col.vals[t] * x_[static_cast<std::size_t>(v)];
      }
    }
  } else {
    residual = rhs_;
    for (std::int32_t v = 0; v < num_struct_; ++v) {
      if (status_[v] == VStatus::kBasic || x_[v] == 0.0) continue;
      const Column& col = columns_[static_cast<std::size_t>(v)];
      for (std::size_t t = 0; t < col.rows.size(); ++t) {
        residual[static_cast<std::size_t>(col.rows[t])] -= col.vals[t] * x_[v];
      }
    }
  }
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    const std::int32_t slack = num_struct_ + r;
    if (status_[slack] != VStatus::kBasic && x_[slack] != 0.0) {
      residual[static_cast<std::size_t>(r)] -= x_[slack];
    }
  }
  if (options_.use_dense_inverse) {
    // x_B = Binv * residual.
    for (std::int32_t p = 0; p < num_rows_; ++p) {
      const double* row = &binv_[static_cast<std::size_t>(p) * num_rows_];
      double acc = 0.0;
      for (std::int32_t r = 0; r < num_rows_; ++r) {
        acc += row[r] * residual[static_cast<std::size_t>(r)];
      }
      x_[static_cast<std::size_t>(basis_[p])] = acc;
    }
  } else {
    lu_.Ftran(residual);
    for (std::int32_t p = 0; p < num_rows_; ++p) {
      x_[static_cast<std::size_t>(basis_[p])] = residual[static_cast<std::size_t>(p)];
    }
  }
}

bool Simplex::Refactorize() {
  ++stats_.refactorizations;
  const bool ok =
      options_.use_dense_inverse ? RefactorizeDense() : RefactorizeSparse();
  if (ok) pivots_since_refactor_ = 0;
  // Resync point for the incrementally maintained fixed-column state:
  // the += / -= bookkeeping accumulates rounding over long churn runs,
  // so it is rebuilt from scratch on the refactorization cadence.
  if (ok && IncActive()) RecomputeFixedState();
  return ok;
}

bool Simplex::RefactorizeSparse() {
  std::vector<SparseColumn> cols(static_cast<std::size_t>(num_rows_));
  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const std::int32_t var = basis_[p];
    SparseColumn& out = cols[static_cast<std::size_t>(p)];
    if (var < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(var)];
      out.rows = col.rows;
      out.vals = col.vals;
    } else {
      out.rows = {var - num_struct_};
      out.vals = {1.0};
    }
  }
  return lu_.Factorize(cols);
}

bool Simplex::RefactorizeDense() {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  std::vector<double> bmat(m * m, 0.0);
  for (std::size_t p = 0; p < m; ++p) {
    const std::int32_t var = basis_[p];
    if (var < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(var)];
      for (std::size_t t = 0; t < col.rows.size(); ++t) {
        bmat[static_cast<std::size_t>(col.rows[t]) * m + p] = col.vals[t];
      }
    } else {
      bmat[static_cast<std::size_t>(var - num_struct_) * m + p] = 1.0;
    }
  }
  std::vector<double> inv(m * m, 0.0);
  for (std::size_t r = 0; r < m; ++r) inv[r * m + r] = 1.0;

  // Gauss-Jordan with partial pivoting, applied to [bmat | inv].
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t pivot_row = k;
    double best = std::abs(bmat[k * m + k]);
    for (std::size_t r = k + 1; r < m; ++r) {
      const double cand = std::abs(bmat[r * m + k]);
      if (cand > best) {
        best = cand;
        pivot_row = r;
      }
    }
    if (best < 1e-11) return false;  // singular basis
    if (pivot_row != k) {
      for (std::size_t c = 0; c < m; ++c) {
        std::swap(bmat[pivot_row * m + c], bmat[k * m + c]);
        std::swap(inv[pivot_row * m + c], inv[k * m + c]);
      }
    }
    const double scale = 1.0 / bmat[k * m + k];
    for (std::size_t c = 0; c < m; ++c) {
      bmat[k * m + c] *= scale;
      inv[k * m + c] *= scale;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == k) continue;
      const double factor = bmat[r * m + k];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < m; ++c) {
        bmat[r * m + c] -= factor * bmat[k * m + c];
        inv[r * m + c] -= factor * inv[k * m + c];
      }
    }
  }
  binv_ = std::move(inv);
  return true;
}

void Simplex::Ftran(std::int32_t j, std::vector<double>& w) {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  w.assign(m, 0.0);
  if (options_.use_dense_inverse) {
    if (j < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(j)];
      for (std::size_t p = 0; p < m; ++p) {
        const double* row = &binv_[p * m];
        double acc = 0.0;
        for (std::size_t t = 0; t < col.rows.size(); ++t) {
          acc += row[static_cast<std::size_t>(col.rows[t])] * col.vals[t];
        }
        w[p] = acc;
      }
    } else {
      const std::size_t r = static_cast<std::size_t>(j - num_struct_);
      for (std::size_t p = 0; p < m; ++p) w[p] = binv_[p * m + r];
    }
  } else {
    if (j < num_struct_) {
      const Column& col = columns_[static_cast<std::size_t>(j)];
      for (std::size_t t = 0; t < col.rows.size(); ++t) {
        w[static_cast<std::size_t>(col.rows[t])] = col.vals[t];
      }
    } else {
      w[static_cast<std::size_t>(j - num_struct_)] = 1.0;
    }
    lu_.Ftran(w);
  }
  for (std::size_t p = 0; p < m; ++p) {
    if (w[p] != 0.0) ++stats_.ftran_nnz;
  }
}

void Simplex::ComputeDuals(const std::vector<double>& cost, std::vector<double>& y) const {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  if (options_.use_dense_inverse) {
    y.assign(m, 0.0);
    for (std::size_t p = 0; p < m; ++p) {
      const double cb = cost[static_cast<std::size_t>(basis_[p])];
      if (cb == 0.0) continue;
      const double* row = &binv_[p * m];
      for (std::size_t r = 0; r < m; ++r) y[r] += cb * row[r];
    }
  } else {
    y.resize(m);
    for (std::size_t p = 0; p < m; ++p) {
      y[p] = cost[static_cast<std::size_t>(basis_[p])];
    }
    lu_.Btran(y);
  }
}

double Simplex::ReducedCost(std::int32_t j, const std::vector<double>& cost,
                            const std::vector<double>& y) const {
  double d = cost[static_cast<std::size_t>(j)];
  if (j < num_struct_) {
    const Column& col = columns_[static_cast<std::size_t>(j)];
    for (std::size_t t = 0; t < col.rows.size(); ++t) {
      d -= y[static_cast<std::size_t>(col.rows[t])] * col.vals[t];
    }
  } else {
    d -= y[static_cast<std::size_t>(j - num_struct_)];
  }
  return d;
}

Simplex::Entering Simplex::PriceEntering(const std::vector<double>& cost,
                                         const std::vector<double>& y,
                                         bool bland) const {
  Entering best;
  double best_score = options_.opt_tol;
  // Returns true when the scan should stop (Bland: first eligible).
  const auto consider = [&](std::int32_t j) -> bool {
    const VStatus st = status_[j];
    if (st == VStatus::kBasic) return false;
    if (upper_[j] - lower_[j] <= 0.0) return false;  // fixed variable
    const double d = ReducedCost(j, cost, y);
    int direction = 0;
    if (st == VStatus::kAtLower && d < -options_.opt_tol) {
      direction = +1;
    } else if (st == VStatus::kAtUpper && d > options_.opt_tol) {
      direction = -1;
    } else if (st == VStatus::kFreeNb && std::abs(d) > options_.opt_tol) {
      direction = d < 0.0 ? +1 : -1;
    } else {
      return false;
    }
    if (bland) {  // first eligible index
      best.var = j;
      best.direction = direction;
      best.reduced_cost = d;
      return true;
    }
    const double score = std::abs(d);
    if (score > best_score) {
      best_score = score;
      best.var = j;
      best.direction = direction;
      best.reduced_cost = d;
    }
    return false;
  };
  if (IncActive()) {
    // The pricing list is ascending and a superset of the nonfixed
    // structural candidates, so even Bland's first-eligible order
    // matches the full scan.
    for (std::int32_t j : pricing_list_) {
      if (consider(j)) return best;
    }
    for (std::int32_t j = num_struct_; j < num_total_; ++j) {
      if (consider(j)) return best;
    }
  } else {
    for (std::int32_t j = 0; j < num_total_; ++j) {
      if (consider(j)) return best;
    }
  }
  return best;
}

Simplex::RatioResult Simplex::RatioTest(const Entering& e, const std::vector<double>& w,
                                        bool phase1, bool bland) const {
  const double tol = options_.feas_tol;
  RatioResult result;
  double best_step = kInf;
  std::int32_t best_pos = -1;
  bool best_at_upper = false;
  double best_pivot_mag = 0.0;

  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const double wp = w[static_cast<std::size_t>(p)];
    if (std::abs(wp) < 1e-9) continue;
    const std::int32_t var = basis_[p];
    const double v = x_[static_cast<std::size_t>(var)];
    const double lo = lower_[static_cast<std::size_t>(var)];
    const double up = upper_[static_cast<std::size_t>(var)];
    const double rate = -e.direction * wp;  // change of this basic per unit step

    double step = kInf;
    bool at_upper = false;
    if (phase1 && v < lo - tol) {
      // Infeasible below: blocks only when climbing back to its lower bound.
      if (rate > 0.0) {
        step = (lo - v) / rate;
        at_upper = false;
      }
    } else if (phase1 && v > up + tol) {
      // Infeasible above: blocks only when descending to its upper bound.
      if (rate < 0.0) {
        step = (v - up) / (-rate);
        at_upper = true;
      }
    } else {
      if (rate > 0.0 && IsFinite(up)) {
        step = (up - v) / rate;
        at_upper = true;
      } else if (rate < 0.0 && IsFinite(lo)) {
        step = (v - lo) / (-rate);
        at_upper = false;
      }
    }
    if (step == kInf) continue;
    if (step < 0.0) step = 0.0;  // numerical noise on degenerate bases

    bool take = false;
    if (step < best_step - 1e-10) {
      take = true;
    } else if (step < best_step + 1e-10) {
      if (bland) {
        take = best_pos < 0 || var < basis_[best_pos];
      } else {
        take = std::abs(wp) > best_pivot_mag;  // stability tie-break
      }
    }
    if (take) {
      best_step = step;
      best_pos = p;
      best_at_upper = at_upper;
      best_pivot_mag = std::abs(wp);
    }
  }

  // The entering variable itself can flip to its opposite bound.
  const double span = upper_[static_cast<std::size_t>(e.var)] -
                      lower_[static_cast<std::size_t>(e.var)];
  const bool flip_possible = status_[static_cast<std::size_t>(e.var)] != VStatus::kFreeNb &&
                             IsFinite(span);
  if (flip_possible && span < best_step) {
    result.step = span;
    result.leaving_pos = -1;
    return result;
  }
  if (best_pos < 0) {
    result.unbounded = true;
    return result;
  }
  result.step = best_step;
  result.leaving_pos = best_pos;
  result.leaving_at_upper = best_at_upper;
  return result;
}

void Simplex::ApplyStep(const Entering& e, const std::vector<double>& w,
                        const RatioResult& r) {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  const double step = r.step;
  // Move all basic variables.
  if (step != 0.0) {
    for (std::size_t p = 0; p < m; ++p) {
      if (w[p] == 0.0) continue;
      x_[static_cast<std::size_t>(basis_[p])] -= e.direction * w[p] * step;
    }
  }
  const std::size_t j = static_cast<std::size_t>(e.var);
  x_[j] += e.direction * step;

  if (r.leaving_pos < 0) {
    // Bound flip.
    status_[j] = e.direction > 0 ? VStatus::kAtUpper : VStatus::kAtLower;
    x_[j] = e.direction > 0 ? upper_[j] : lower_[j];
    return;
  }

  const std::size_t p = static_cast<std::size_t>(r.leaving_pos);
  const std::int32_t leaving = basis_[p];
  status_[static_cast<std::size_t>(leaving)] =
      r.leaving_at_upper ? VStatus::kAtUpper : VStatus::kAtLower;
  x_[static_cast<std::size_t>(leaving)] = r.leaving_at_upper
                                              ? upper_[static_cast<std::size_t>(leaving)]
                                              : lower_[static_cast<std::size_t>(leaving)];
  if (IncActive() && leaving < num_struct_ && Fixed(leaving)) {
    // A variable fixed while basic just left the basis: it now counts
    // toward the compressed fixed activity and is dead for pricing.
    AddFixedContribution(leaving, x_[static_cast<std::size_t>(leaving)], +1.0);
    if (in_pricing_list_[static_cast<std::size_t>(leaving)]) ++pricing_dead_;
  }
  basis_[p] = e.var;
  status_[j] = VStatus::kBasic;

  bool update_ok = true;
  if (options_.use_dense_inverse) {
    // Product-form update of the dense inverse: row p is scaled by
    // 1/w_p and eliminated from every other row.
    const double pivot = w[p];
    double* prow = &binv_[p * m];
    const double inv_pivot = 1.0 / pivot;
    for (std::size_t c = 0; c < m; ++c) prow[c] *= inv_pivot;
    for (std::size_t q = 0; q < m; ++q) {
      if (q == p) continue;
      const double factor = w[q];
      if (factor == 0.0) continue;
      double* qrow = &binv_[q * m];
      for (std::size_t c = 0; c < m; ++c) qrow[c] -= factor * prow[c];
    }
  } else {
    update_ok = lu_.Update(r.leaving_pos, w);
  }

  if (!update_ok || ++pivots_since_refactor_ >= options_.refactor_interval) {
    if (!Refactorize()) {
      SFP_LOG_WARN << "singular basis during refactorization; resetting";
      ResetBasisToSlacks();
      SnapNonbasicToBounds();
    }
    ComputeBasicValues();
  }
}

double Simplex::TotalInfeasibility() const {
  double total = 0.0;
  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const std::size_t var = static_cast<std::size_t>(basis_[p]);
    const double v = x_[var];
    if (v < lower_[var]) total += lower_[var] - v;
    if (v > upper_[var]) total += v - upper_[var];
  }
  return total;
}

void Simplex::BuildPhase1Cost(std::vector<double>& cost) const {
  cost.assign(static_cast<std::size_t>(num_total_), 0.0);
  const double tol = options_.feas_tol;
  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const std::size_t var = static_cast<std::size_t>(basis_[p]);
    const double v = x_[var];
    if (v < lower_[var] - tol) {
      cost[var] = -1.0;  // wants to increase
    } else if (v > upper_[var] + tol) {
      cost[var] = +1.0;  // wants to decrease
    }
  }
}

double Simplex::CurrentObjective() const {
  if (!IncActive()) {
    double metric = 0.0;
    for (std::int32_t v = 0; v < num_total_; ++v) {
      metric += cost_[static_cast<std::size_t>(v)] * x_[static_cast<std::size_t>(v)];
    }
    return metric;
  }
  double metric = fixed_obj_;
  for (std::int32_t v : pricing_list_) {
    if (status_[static_cast<std::size_t>(v)] == VStatus::kBasic || Fixed(v)) continue;
    metric += cost_[static_cast<std::size_t>(v)] * x_[static_cast<std::size_t>(v)];
  }
  for (std::int32_t p = 0; p < num_rows_; ++p) {
    const std::int32_t var = basis_[p];
    if (var < num_struct_) {
      metric += cost_[static_cast<std::size_t>(var)] * x_[static_cast<std::size_t>(var)];
    }
  }
  return metric;  // nonbasic slacks carry zero cost
}

SolveStatus Simplex::Iterate(const std::vector<double>& cost, bool phase1) {
  std::vector<double> working_cost;
  std::vector<double> y;
  std::vector<double> w;
  int stall = 0;
  bool bland = false;
  double last_progress_metric = phase1 ? TotalInfeasibility() : kInf;

  for (;;) {
    if (stats_.iterations - iterations_at_solve_start_ >= options_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }

    const std::vector<double>* active_cost = &cost;
    if (phase1) {
      if (TotalInfeasibility() <= options_.feas_tol * (num_rows_ + 1)) {
        return SolveStatus::kOptimal;
      }
      BuildPhase1Cost(working_cost);
      active_cost = &working_cost;
    }

    ComputeDuals(*active_cost, y);
    const Entering e = PriceEntering(*active_cost, y, bland);
    if (e.var < 0) {
      if (phase1) {
        return TotalInfeasibility() <= options_.feas_tol * (num_rows_ + 1)
                   ? SolveStatus::kOptimal
                   : SolveStatus::kInfeasible;
      }
      return SolveStatus::kOptimal;
    }

    Ftran(e.var, w);
    const RatioResult r = RatioTest(e, w, phase1, bland);
    if (r.unbounded) {
      // Phase 1's objective is bounded below by zero, so an unbounded
      // ray here means numerical trouble; report infeasible.
      return phase1 ? SolveStatus::kInfeasible : SolveStatus::kUnbounded;
    }
    ApplyStep(e, w, r);
    ++stats_.iterations;
    if (phase1) ++stats_.phase1_iterations;

    // Anti-cycling: switch to Bland's rule during long degenerate runs.
    double metric;
    if (phase1) {
      metric = TotalInfeasibility();
    } else {
      metric = CurrentObjective();
    }
    if (metric < last_progress_metric - 1e-10) {
      last_progress_metric = metric;
      stall = 0;
      bland = false;
    } else if (++stall > options_.bland_trigger) {
      bland = true;
    }
  }
}

Simplex::DualOutcome Simplex::TryDualWarmStart() {
  const std::size_t m = static_cast<std::size_t>(num_rows_);
  const double tol = options_.feas_tol;
  std::vector<double> y;
  ComputeDuals(cost_, y);

  // Dual-feasibility repair: a nonbasic variable whose reduced cost
  // points away from its bound flips to the opposite finite bound
  // (typically the fresh candidate column with an attractive cost).
  // A flip with no finite opposite bound, or a free variable with a
  // nonzero reduced cost, cannot be repaired without primal pivots —
  // degrade to phase 1. The scan is two-pass on purpose: flips are
  // collected first and applied only once the whole set proves
  // repairable, so a fallback leaves x_/status_ exactly as the caller
  // left them (a half-applied flip set breaks Ax = b for phase 1).
  bool repairable = true;
  std::vector<std::int32_t> flips;
  const auto repair = [&](std::int32_t j) {
    if (!repairable) return;
    const std::size_t sj = static_cast<std::size_t>(j);
    if (status_[sj] == VStatus::kBasic) return;
    if (upper_[sj] - lower_[sj] <= 0.0) return;  // fixed: vacuously dual ok
    const double d = ReducedCost(j, cost_, y);
    if (status_[sj] == VStatus::kAtLower && d < -options_.opt_tol) {
      if (!IsFinite(upper_[sj])) {
        repairable = false;
        return;
      }
      flips.push_back(j);
    } else if (status_[sj] == VStatus::kAtUpper && d > options_.opt_tol) {
      if (!IsFinite(lower_[sj])) {
        repairable = false;
        return;
      }
      flips.push_back(j);
    } else if (status_[sj] == VStatus::kFreeNb && std::abs(d) > options_.opt_tol) {
      repairable = false;
    }
  };
  if (IncActive()) {
    for (std::int32_t j : pricing_list_) repair(j);
    for (std::int32_t j = num_struct_; j < num_total_ && repairable; ++j) repair(j);
  } else {
    for (std::int32_t j = 0; j < num_total_ && repairable; ++j) repair(j);
  }
  if (!repairable) return DualOutcome::kFallback;
  for (std::int32_t j : flips) {
    const std::size_t sj = static_cast<std::size_t>(j);
    if (status_[sj] == VStatus::kAtLower) {
      status_[sj] = VStatus::kAtUpper;
      x_[sj] = upper_[sj];
    } else {
      status_[sj] = VStatus::kAtLower;
      x_[sj] = lower_[sj];
    }
  }
  if (!flips.empty()) ComputeBasicValues();

  std::int64_t budget = options_.max_dual_iterations > 0
                            ? options_.max_dual_iterations
                            : std::max<std::int64_t>(200, 4 * num_rows_);
  const std::int64_t epoch = basis_epoch_;
  std::vector<double> rho;
  std::vector<double> w;

  for (;;) {
    // A singular refactorization inside ApplyStep resets the basis to
    // slacks mid-flight; the dual state is then meaningless.
    if (basis_epoch_ != epoch) return DualOutcome::kFallback;

    // Leaving choice: the most primal-infeasible basic variable.
    std::int32_t p = -1;
    double delta = 0.0;  // x - violated bound (sign = side of violation)
    bool at_upper = false;
    double worst = tol;
    for (std::int32_t q = 0; q < num_rows_; ++q) {
      const std::size_t var = static_cast<std::size_t>(basis_[q]);
      const double v = x_[var];
      if (v < lower_[var] - worst) {
        worst = lower_[var] - v;
        p = q;
        delta = v - lower_[var];
        at_upper = false;
      } else if (v > upper_[var] + worst) {
        worst = v - upper_[var];
        p = q;
        delta = v - upper_[var];
        at_upper = true;
      }
    }
    if (p < 0) return DualOutcome::kPrimalFeasible;
    if (budget-- <= 0) return DualOutcome::kFallback;
    if (stats_.iterations - iterations_at_solve_start_ >= options_.max_iterations) {
      return DualOutcome::kFallback;
    }

    // rho = row p of Binv; alpha_j = rho . A_j is the pivot-row entry.
    if (options_.use_dense_inverse) {
      const double* row = &binv_[static_cast<std::size_t>(p) * m];
      rho.assign(row, row + m);
    } else {
      rho.assign(m, 0.0);
      rho[static_cast<std::size_t>(p)] = 1.0;
      lu_.Btran(rho);
    }
    ComputeDuals(cost_, y);

    // Entering choice: smallest dual ratio |d_j| / |alpha_j| among the
    // nonbasic columns whose admissible move drives x_B[p] toward its
    // violated bound, i.e. sign(direction * alpha_j) == sign(delta).
    // Ties break toward the larger |alpha| for numerical stability.
    std::int32_t best_j = -1;
    int best_dir = 0;
    double best_theta = kInf;
    double best_alpha_mag = 0.0;
    double best_d = 0.0;
    const auto consider = [&](std::int32_t j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (status_[sj] == VStatus::kBasic) return;
      if (upper_[sj] - lower_[sj] <= 0.0) return;  // fixed
      double alpha;
      if (j < num_struct_) {
        const Column& col = columns_[sj];
        alpha = 0.0;
        for (std::size_t t = 0; t < col.rows.size(); ++t) {
          alpha += rho[static_cast<std::size_t>(col.rows[t])] * col.vals[t];
        }
      } else {
        alpha = rho[static_cast<std::size_t>(j - num_struct_)];
      }
      if (std::abs(alpha) < 1e-9) return;
      int dir;
      if (status_[sj] == VStatus::kAtLower) {
        dir = +1;
      } else if (status_[sj] == VStatus::kAtUpper) {
        dir = -1;
      } else {  // free: pick whichever direction helps
        dir = (delta * alpha > 0.0) ? +1 : -1;
      }
      if ((dir * alpha > 0.0) != (delta > 0.0)) return;  // wrong direction
      const double d = ReducedCost(j, cost_, y);
      const double theta = std::abs(d) / std::abs(alpha);
      if (theta < best_theta - 1e-12 ||
          (theta < best_theta + 1e-12 && std::abs(alpha) > best_alpha_mag)) {
        best_theta = theta;
        best_j = j;
        best_dir = dir;
        best_alpha_mag = std::abs(alpha);
        best_d = d;
      }
    };
    if (IncActive()) {
      for (std::int32_t j : pricing_list_) consider(j);
      for (std::int32_t j = num_struct_; j < num_total_; ++j) consider(j);
    } else {
      for (std::int32_t j = 0; j < num_total_; ++j) consider(j);
    }
    if (best_j < 0) {
      // No column can move row p back inside its bounds: the row is a
      // primal-infeasibility certificate. The caller confirms via
      // phase 1 rather than trusting the warm path's verdict.
      return DualOutcome::kInfeasible;
    }

    Entering e;
    e.var = best_j;
    e.direction = best_dir;
    e.reduced_cost = best_d;
    Ftran(best_j, w);
    const double alpha_p = w[static_cast<std::size_t>(p)];
    if (std::abs(alpha_p) < 1e-9 ||
        ((best_dir * alpha_p > 0.0) != (delta > 0.0))) {
      // The fresh Ftran disagrees with the Btran row: numerics are
      // drifting, let phase 1 take over.
      return DualOutcome::kFallback;
    }
    const double step = delta / (best_dir * alpha_p);  // > 0 by the sign rules

    RatioResult r;
    const double span = upper_[static_cast<std::size_t>(best_j)] -
                        lower_[static_cast<std::size_t>(best_j)];
    if (status_[static_cast<std::size_t>(best_j)] != VStatus::kFreeNb &&
        IsFinite(span) && span < step) {
      // The entering variable hits its opposite bound first: bound
      // flip, then re-examine the (reduced) violation of row p.
      r.step = span;
      r.leaving_pos = -1;
    } else {
      r.step = step;
      r.leaving_pos = p;
      r.leaving_at_upper = at_upper;
    }
    ApplyStep(e, w, r);
    ++stats_.iterations;
    ++stats_.dual_iterations;
  }
}

Solution Simplex::Solve() {
  Solution solution;
  iterations_at_solve_start_ = stats_.iterations;
  if (num_rows_ == 0 && num_struct_ == 0) {
    solution.status = SolveStatus::kOptimal;
    return solution;
  }
  bool warm = basis_valid_;
  if (!basis_valid_) {
    ResetBasisToSlacks();
  } else if (needs_refactor_) {
    // A restored snapshot or appended row: factorize it; a singular one
    // (stale numerics after bound changes) falls back to the slack basis.
    if (Refactorize()) {
      needs_refactor_ = false;
    } else {
      ResetBasisToSlacks();
      warm = false;
    }
  }
  if (options_.incremental) {
    if (fixed_dirty_ || pricing_dirty_) {
      RecomputeFixedState();
    } else if (pricing_dead_ * 2 >
               static_cast<std::int64_t>(pricing_list_.size())) {
      CompactPricingList();
    }
  }
  SnapNonbasicToBounds();
  ComputeBasicValues();

  bool primal_feasible = false;
  if (warm && options_.warm_dual) {
    ++stats_.warm_attempts;
    if (TryDualWarmStart() == DualOutcome::kPrimalFeasible) {
      ++stats_.warm_successes;
      primal_feasible = true;
    }
    // kInfeasible and kFallback both degrade to composite phase 1 from
    // wherever the dual pivots left the basis — the dual path is an
    // accelerator, never the arbiter of feasibility.
  }

  SolveStatus status =
      primal_feasible ? SolveStatus::kOptimal : Iterate(cost_, /*phase1=*/true);
  if (status == SolveStatus::kOptimal) {
    status = Iterate(cost_, /*phase1=*/false);
  }

  solution.status = status;
  if (status == SolveStatus::kOptimal || status == SolveStatus::kIterationLimit) {
    if (options_.report_values) {
      solution.values.assign(x_.begin(), x_.begin() + num_struct_);
    }
    double obj = 0.0;
    if (IncActive()) {
      obj = fixed_obj_;
      for (std::int32_t v : pricing_list_) {
        if (status_[static_cast<std::size_t>(v)] == VStatus::kBasic || Fixed(v)) continue;
        obj += cost_[static_cast<std::size_t>(v)] * x_[static_cast<std::size_t>(v)];
      }
      for (std::int32_t p = 0; p < num_rows_; ++p) {
        const std::int32_t var = basis_[p];
        if (var < num_struct_) {
          obj += cost_[static_cast<std::size_t>(var)] * x_[static_cast<std::size_t>(var)];
        }
      }
    } else {
      for (std::int32_t v = 0; v < num_struct_; ++v) {
        obj += cost_[static_cast<std::size_t>(v)] * x_[static_cast<std::size_t>(v)];
      }
    }
    solution.objective = maximize_ ? -obj : obj;
  }
  return solution;
}

}  // namespace sfp::lp
