#include "lp/rounding.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sfp::lp {
namespace {

double Clamp(const Variable& var, double value) {
  return std::clamp(value, var.lower, var.upper);
}

}  // namespace

std::vector<double> RandomizedRound(const Model& model, const std::vector<double>& values,
                                    Rng& rng) {
  SFP_CHECK_EQ(values.size(), static_cast<std::size_t>(model.num_vars()));
  std::vector<double> rounded(values);
  for (VarId v = 0; v < model.num_vars(); ++v) {
    const Variable& var = model.var(v);
    if (!var.is_integer) continue;
    const double value = values[static_cast<std::size_t>(v)];
    const double floor_value = std::floor(value);
    const double frac = value - floor_value;
    const double up = rng.Bernoulli(frac) ? 1.0 : 0.0;
    rounded[static_cast<std::size_t>(v)] = Clamp(var, floor_value + up);
  }
  return rounded;
}

std::vector<double> NearestRound(const Model& model, const std::vector<double>& values) {
  SFP_CHECK_EQ(values.size(), static_cast<std::size_t>(model.num_vars()));
  std::vector<double> rounded(values);
  for (VarId v = 0; v < model.num_vars(); ++v) {
    const Variable& var = model.var(v);
    if (!var.is_integer) continue;
    rounded[static_cast<std::size_t>(v)] =
        Clamp(var, std::round(values[static_cast<std::size_t>(v)]));
  }
  return rounded;
}

}  // namespace sfp::lp
