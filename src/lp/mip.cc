#include "lp/mip.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "common/worker_pool.h"

namespace sfp::lp {

MipSolver::MipSolver(const Model& model, MipOptions options)
    : model_(model),
      options_(options),
      simplex_(model, options.simplex),
      int_vars_(model.IntegerVars()),
      sense_(model.maximize() ? 1.0 : -1.0) {}

void MipSolver::ApplyNodeBounds(Simplex& simplex, const NodeChain* chain) const {
  // Restore root bounds for all integer variables, then overlay the
  // node's chain of branching decisions (walked root-ward; the last
  // write per variable must win, so collect then apply in order).
  for (VarId v : int_vars_) {
    const Variable& var = model_.var(v);
    simplex.SetVarBounds(v, var.lower, var.upper);
  }
  std::vector<const BoundChange*> path;
  for (const NodeChain* c = chain; c != nullptr; c = c->parent.get()) {
    path.push_back(&c->change);
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    simplex.SetVarBounds((*it)->var, (*it)->lower, (*it)->upper);
  }
}

VarId MipSolver::PickBranchVar(const std::vector<double>& values) {
  const bool use_pc = options_.branching == MipOptions::Branching::kPseudocost;
  double global_avg[2] = {0.0, 0.0};
  std::int64_t total_obs = 0;
  if (use_pc) {
    std::lock_guard<std::mutex> lock(pseudo_mutex_);
    total_obs = pseudo_global_count_[0] + pseudo_global_count_[1];
    for (int d = 0; d < 2; ++d) {
      if (pseudo_global_count_[d] > 0) {
        global_avg[d] = pseudo_global_sum_[d] / static_cast<double>(pseudo_global_count_[d]);
      }
    }
  }

  VarId best = -1;
  int best_priority = std::numeric_limits<int>::min();
  double best_score = -1.0;
  double best_dist = -1.0;
  // Select within the highest branch-priority class. With pseudocost
  // observations available, rank by the product of estimated objective
  // degradations in each direction; otherwise (and as a tie-break) use
  // the most-fractional rule. Ascending var order + strict comparisons
  // make exact ties deterministic (lowest id wins).
  std::unique_lock<std::mutex> pc_lock(pseudo_mutex_, std::defer_lock);
  if (use_pc && total_obs > 0) pc_lock.lock();
  for (VarId v : int_vars_) {
    const double value = values[static_cast<std::size_t>(v)];
    const double frac = value - std::floor(value);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= options_.integer_tol) continue;
    const int priority = model_.var(v).branch_priority;
    double score = 0.0;
    if (use_pc && total_obs > 0) {
      const Pseudocost& pc = pseudo_[static_cast<std::size_t>(v)];
      const double down = pc.count[0] >= options_.pseudocost_reliability
                              ? pc.sum[0] / static_cast<double>(pc.count[0])
                              : global_avg[0];
      const double up = pc.count[1] >= options_.pseudocost_reliability
                            ? pc.sum[1] / static_cast<double>(pc.count[1])
                            : global_avg[1];
      score = std::max(down * frac, 1e-12) * std::max(up * (1.0 - frac), 1e-12);
    }
    if (priority > best_priority ||
        (priority == best_priority &&
         (score > best_score || (score == best_score && dist > best_dist)))) {
      best_priority = priority;
      best_score = score;
      best_dist = dist;
      best = v;
    }
  }
  return best;
}

bool MipSolver::CandidateIsFeasible(const std::vector<double>& candidate) const {
  if (candidate.size() != static_cast<std::size_t>(model_.num_vars())) return false;
  const double tol = 1e-6;
  for (VarId v = 0; v < model_.num_vars(); ++v) {
    const Variable& var = model_.var(v);
    const double value = candidate[static_cast<std::size_t>(v)];
    if (value < var.lower - tol || value > var.upper + tol) return false;
    if (var.is_integer && std::abs(value - std::round(value)) > options_.integer_tol) {
      return false;
    }
  }
  for (const Row& row : model_.rows()) {
    double lhs = 0.0;
    for (std::size_t t = 0; t < row.vars.size(); ++t) {
      lhs += row.coeffs[t] * candidate[static_cast<std::size_t>(row.vars[t])];
    }
    const double slack_tol = 1e-6 * (1.0 + std::abs(row.rhs));
    switch (row.sense) {
      case Sense::kLe:
        if (lhs > row.rhs + slack_tol) return false;
        break;
      case Sense::kGe:
        if (lhs < row.rhs - slack_tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - row.rhs) > slack_tol) return false;
        break;
    }
  }
  return true;
}

double MipSolver::Objective(const std::vector<double>& values) const {
  double obj = 0.0;
  for (VarId v = 0; v < model_.num_vars(); ++v) {
    obj += model_.var(v).objective * values[static_cast<std::size_t>(v)];
  }
  return obj;
}

void MipSolver::TryImproveIncumbent(const std::vector<double>& values, const Stopwatch& watch) {
  const double obj = Objective(values);
  const double internal = sense_ * obj;
  std::lock_guard<std::mutex> lock(incumbent_mutex_);
  if (has_incumbent_ && internal <= best_internal_ + options_.objective_tol) return;
  best_internal_ = internal;
  has_incumbent_ = true;
  // Publish the prune threshold for the lock-free fast path: nodes
  // bounded at or below it cannot beat this incumbent.
  cutoff_.store(internal + options_.objective_tol + options_.relative_gap * std::abs(internal),
                std::memory_order_relaxed);
  result_.solution.values = values;
  result_.solution.objective = obj;
  const double seconds = watch.ElapsedSeconds();
  result_.incumbent_trace.push_back({seconds, obj});
  result_.gap_trace.push_back({seconds, obj, sense_ * root_bound_internal_});
  SFP_LOG_DEBUG << "new incumbent " << obj << " at " << seconds << "s";
}

void MipSolver::RecordDroppedNode(double parent_bound) {
  nodes_dropped_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(incumbent_mutex_);
  // The abandoned subtree may hold anything up to its parent's bound;
  // folding that bound into the final dual bound keeps it sound.
  dropped_internal_ = std::max(dropped_internal_, parent_bound);
  SFP_LOG_WARN << "node LP hit the iteration limit; dropping node (bound "
               << sense_ * parent_bound << " folded into best_bound)";
}

void MipSolver::UpdatePseudocost(VarId var, int dir, double frac, double degradation) {
  const int d = dir > 0 ? 1 : 0;
  const double unit = degradation / std::max(frac, 1e-6);
  std::lock_guard<std::mutex> lock(pseudo_mutex_);
  Pseudocost& pc = pseudo_[static_cast<std::size_t>(var)];
  pc.sum[d] += unit;
  ++pc.count[d];
  pseudo_global_sum_[d] += unit;
  ++pseudo_global_count_[d];
}

void MipSolver::ProcessNode(Simplex& simplex, const OpenNode& node, bool snapshot_basis,
                            const Stopwatch& watch, Children& out) {
  out.has_preferred = false;
  out.has_other = false;

  ApplyNodeBounds(simplex, node.chain.get());
  if (node.warm != nullptr) simplex.RestoreBasis(*node.warm);
  const Solution lp = simplex.Solve();
  const std::int64_t node_index = nodes_explored_.fetch_add(1, std::memory_order_relaxed);

  if (lp.status == SolveStatus::kInfeasible) return;
  if (lp.status == SolveStatus::kUnbounded) {
    // An unbounded relaxation of a bounded MIP indicates a modelling
    // error; surface it loudly rather than silently mis-solving.
    SFP_CHECK_MSG(false, "unbounded LP relaxation in branch & bound");
  }
  if (lp.status == SolveStatus::kIterationLimit) {
    RecordDroppedNode(node.parent_bound);
    return;
  }

  const double bound = sense_ * lp.objective;
  if (node.chain == nullptr) {
    std::lock_guard<std::mutex> lock(incumbent_mutex_);
    root_bound_internal_ = bound;
  }
  if (node.branch_var >= 0 && options_.branching == MipOptions::Branching::kPseudocost) {
    const double degradation = std::max(0.0, node.parent_bound - bound);
    if (std::isfinite(degradation)) {
      UpdatePseudocost(node.branch_var, node.branch_dir, node.branch_frac, degradation);
    }
  }
  if (bound <= cutoff_.load(std::memory_order_relaxed)) return;

  const VarId branch_var = PickBranchVar(lp.values);
  if (branch_var < 0) {
    TryImproveIncumbent(lp.values, watch);
    return;
  }

  const bool heuristic_due =
      heuristic_ &&
      ((options_.heuristic_period > 0 && node_index % options_.heuristic_period == 0) ||
       model_.var(branch_var).branch_priority < options_.heuristic_priority_threshold);
  if (heuristic_due) {
    std::vector<double> candidate;
    bool proposed;
    {
      // The callback may keep mutable state (e.g. an Rng); serialize it.
      std::lock_guard<std::mutex> lock(heuristic_mutex_);
      proposed = heuristic_(lp.values, candidate);
    }
    if (proposed && CandidateIsFeasible(candidate)) {
      TryImproveIncumbent(candidate, watch);
      if (bound <= cutoff_.load(std::memory_order_relaxed)) return;
    }
  }

  const double value = lp.values[static_cast<std::size_t>(branch_var)];
  const double floor_value = std::floor(value);
  const double frac = value - floor_value;
  const Variable& var = model_.var(branch_var);

  // Both children share the parent's basis snapshot; the node LPs then
  // warm-start from it instead of a cold slack basis.
  std::shared_ptr<const Simplex::BasisState> warm;
  if (snapshot_basis) {
    warm = std::make_shared<const Simplex::BasisState>(simplex.SaveBasis());
  }

  // A child whose domain would be empty (possible when the variable's
  // model bounds are themselves fractional) is simply not created.
  const bool down_feasible = floor_value >= var.lower;
  const bool up_feasible = floor_value + 1.0 <= var.upper;
  OpenNode down, up;
  if (down_feasible) {
    down.chain = std::make_shared<const NodeChain>(
        NodeChain{{branch_var, var.lower, floor_value}, node.chain});
    down.warm = warm;
    down.parent_bound = bound;
    down.branch_var = branch_var;
    down.branch_dir = -1;
    down.branch_frac = std::max(frac, options_.integer_tol);
    down.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  if (up_feasible) {
    up.chain = std::make_shared<const NodeChain>(
        NodeChain{{branch_var, floor_value + 1.0, var.upper}, node.chain});
    up.warm = warm;
    up.parent_bound = bound;
    up.branch_var = branch_var;
    up.branch_dir = +1;
    up.branch_frac = std::max(1.0 - frac, options_.integer_tol);
    up.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  // Plunge toward the child nearest the fractional value.
  const bool prefer_up = frac >= 0.5;
  if (down_feasible && up_feasible) {
    out.has_preferred = true;
    out.has_other = true;
    out.preferred = prefer_up ? std::move(up) : std::move(down);
    out.other = prefer_up ? std::move(down) : std::move(up);
  } else if (down_feasible || up_feasible) {
    out.has_preferred = true;
    out.preferred = down_feasible ? std::move(down) : std::move(up);
  }
}

double MipSolver::SolveSerial(const Stopwatch& watch) {
  std::vector<OpenNode> stack;
  {
    OpenNode root;
    root.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    stack.push_back(std::move(root));
  }
  Children kids;
  while (!stack.empty()) {
    if (watch.ElapsedSeconds() > options_.time_limit_seconds ||
        nodes_explored_.load(std::memory_order_relaxed) >= options_.max_nodes) {
      stop_.store(true, std::memory_order_relaxed);
      break;
    }
    OpenNode node = std::move(stack.back());
    stack.pop_back();
    if (node.parent_bound <= cutoff_.load(std::memory_order_relaxed)) {
      continue;  // pruned by the parent's bound
    }
    // The serial engine stays warm from the previous node; snapshots are
    // only needed when children may be picked up by another worker.
    ProcessNode(simplex_, node, /*snapshot_basis=*/false, watch, kids);
    if (kids.has_other) stack.push_back(std::move(kids.other));
    if (kids.has_preferred) stack.push_back(std::move(kids.preferred));
  }
  double open_internal = -kInfinity;
  for (const OpenNode& node : stack) {
    open_internal = std::max(open_internal, node.parent_bound);
  }
  return open_internal;
}

bool MipSolver::WorseNode(const OpenNode& a, const OpenNode& b) {
  if (a.parent_bound != b.parent_bound) return a.parent_bound < b.parent_bound;
  return a.seq > b.seq;
}

void MipSolver::WorkerRun(Simplex& simplex, const Stopwatch& watch) {
  Children kids;
  OpenNode local;
  bool have_local = false;
  for (;;) {
    if (!have_local) {
      std::unique_lock<std::mutex> lock(tree_mutex_);
      tree_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !heap_.empty() || active_workers_ == 0;
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      // Empty heap with no active worker means the tree is exhausted.
      if (heap_.empty()) return;
      std::pop_heap(heap_.begin(), heap_.end(), WorseNode);
      local = std::move(heap_.back());
      heap_.pop_back();
      have_local = true;
      ++active_workers_;
    }
    if (watch.ElapsedSeconds() > options_.time_limit_seconds ||
        nodes_explored_.load(std::memory_order_relaxed) >= options_.max_nodes) {
      // Push the in-hand node back so its bound still counts as open.
      std::lock_guard<std::mutex> lock(tree_mutex_);
      stop_.store(true, std::memory_order_relaxed);
      heap_.push_back(std::move(local));
      std::push_heap(heap_.begin(), heap_.end(), WorseNode);
      --active_workers_;
      tree_cv_.notify_all();
      return;
    }
    if (local.parent_bound > cutoff_.load(std::memory_order_relaxed)) {
      ProcessNode(simplex, local, /*snapshot_basis=*/true, watch, kids);
    } else {
      kids.has_preferred = false;
      kids.has_other = false;
    }
    if (kids.has_other) {
      std::lock_guard<std::mutex> lock(tree_mutex_);
      heap_.push_back(std::move(kids.other));
      std::push_heap(heap_.begin(), heap_.end(), WorseNode);
      tree_cv_.notify_one();
    }
    if (kids.has_preferred) {
      local = std::move(kids.preferred);  // plunge
    } else {
      have_local = false;
      std::lock_guard<std::mutex> lock(tree_mutex_);
      --active_workers_;
      if (heap_.empty() && active_workers_ == 0) tree_cv_.notify_all();
    }
  }
}

double MipSolver::SolveParallel(const Stopwatch& watch) {
  int workers = options_.num_workers > 0 ? options_.num_workers : common::DefaultParallelism();
  workers = std::max(1, workers);
  heap_.clear();
  active_workers_ = 0;
  {
    OpenNode root;
    root.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    heap_.push_back(std::move(root));
  }
  common::WorkerPool pool(workers);
  pool.ParallelFor(workers, [this, &watch](int) {
    Simplex simplex(model_, options_.simplex);
    WorkerRun(simplex, watch);
    const Simplex::Stats& st = simplex.stats();
    std::lock_guard<std::mutex> lock(incumbent_mutex_);
    result_.simplex_pivots += st.iterations;
    result_.refactorizations += st.refactorizations;
    result_.ftran_nnz += st.ftran_nnz;
  });
  double open_internal = -kInfinity;
  for (const OpenNode& node : heap_) {
    open_internal = std::max(open_internal, node.parent_bound);
  }
  heap_.clear();
  return open_internal;
}

MipResult MipSolver::FinishResult(const Stopwatch& watch, double open_internal,
                                  bool stopped_early) {
  MipResult result = std::move(result_);
  result_ = MipResult{};
  result.nodes_explored = nodes_explored_.load(std::memory_order_relaxed);
  result.nodes_dropped = nodes_dropped_.load(std::memory_order_relaxed);
  result.seconds = watch.ElapsedSeconds();

  // Dual bound, in the internal max sense: the best bound over nodes
  // still outstanding (left open or dropped), combined with the
  // incumbent. An exhausted tree with nothing outstanding and no
  // incumbent is infeasible; the bound over the empty set is -infinity
  // internally, i.e. -infinity when maximizing and +infinity when
  // minimizing after the sense flip.
  const double outstanding = std::max(open_internal, dropped_internal_);
  double internal;
  if (outstanding == -kInfinity) {
    internal = has_incumbent_ ? best_internal_ : -kInfinity;
  } else {
    internal = std::max(outstanding, has_incumbent_ ? best_internal_ : -kInfinity);
  }
  result.best_bound = sense_ * internal;

  if (stopped_early) {
    result.solution.status = has_incumbent_ ? SolveStatus::kFeasible : SolveStatus::kTimeLimit;
  } else if (has_incumbent_) {
    // Dropped subtrees may hide a better solution: only claim
    // optimality when nothing outstanding can beat the incumbent.
    result.solution.status = outstanding <= cutoff_.load(std::memory_order_relaxed)
                                 ? SolveStatus::kOptimal
                                 : SolveStatus::kFeasible;
  } else {
    // No incumbent and an exhausted tree: genuinely infeasible only if
    // no subtree was dropped along the way.
    result.solution.status =
        result.nodes_dropped > 0 ? SolveStatus::kIterationLimit : SolveStatus::kInfeasible;
  }
  return result;
}

MipResult MipSolver::Solve() {
  Stopwatch watch;

  result_ = MipResult{};
  nodes_explored_.store(0, std::memory_order_relaxed);
  nodes_dropped_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  cutoff_.store(-kInfinity, std::memory_order_relaxed);
  next_seq_.store(0, std::memory_order_relaxed);
  best_internal_ = -kInfinity;
  has_incumbent_ = false;
  dropped_internal_ = -kInfinity;
  root_bound_internal_ = kInfinity;
  pseudo_.assign(static_cast<std::size_t>(model_.num_vars()), Pseudocost{});
  pseudo_global_sum_[0] = pseudo_global_sum_[1] = 0.0;
  pseudo_global_count_[0] = pseudo_global_count_[1] = 0;

  if (!initial_incumbent_.empty() && CandidateIsFeasible(initial_incumbent_)) {
    TryImproveIncumbent(initial_incumbent_, watch);
  }

  double open_internal;
  if (options_.deterministic) {
    const std::int64_t pivots0 = simplex_.stats().iterations;
    const int refac0 = simplex_.stats().refactorizations;
    const std::int64_t nnz0 = simplex_.stats().ftran_nnz;
    open_internal = SolveSerial(watch);
    result_.simplex_pivots += simplex_.stats().iterations - pivots0;
    result_.refactorizations += simplex_.stats().refactorizations - refac0;
    result_.ftran_nnz += simplex_.stats().ftran_nnz - nnz0;
  } else {
    open_internal = SolveParallel(watch);
  }
  return FinishResult(watch, open_internal, stop_.load(std::memory_order_relaxed));
}

}  // namespace sfp::lp
