#include "lp/mip.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"

namespace sfp::lp {

MipSolver::MipSolver(const Model& model, MipOptions options)
    : model_(model),
      options_(options),
      simplex_(model, options.simplex),
      int_vars_(model.IntegerVars()),
      sense_(model.maximize() ? 1.0 : -1.0) {}

void MipSolver::ApplyNodeBounds(std::int32_t record) {
  // Restore root bounds for all integer variables, then overlay the
  // node's chain of branching decisions (walked root-ward; the last
  // write per variable must win, so collect then apply in order).
  for (VarId v : int_vars_) {
    const Variable& var = model_.var(v);
    simplex_.SetVarBounds(v, var.lower, var.upper);
  }
  std::vector<const BoundChange*> chain;
  for (std::int32_t r = record; r >= 0; r = pool_[static_cast<std::size_t>(r)].parent) {
    chain.push_back(&pool_[static_cast<std::size_t>(r)].change);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    simplex_.SetVarBounds((*it)->var, (*it)->lower, (*it)->upper);
  }
}

VarId MipSolver::PickBranchVar(const std::vector<double>& values) const {
  VarId best = -1;
  int best_priority = std::numeric_limits<int>::min();
  double best_frac_score = -1.0;
  for (VarId v : int_vars_) {
    const double value = values[static_cast<std::size_t>(v)];
    const double frac = value - std::floor(value);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= options_.integer_tol) continue;
    const int priority = model_.var(v).branch_priority;
    // Most-fractional within the highest priority class.
    if (priority > best_priority ||
        (priority == best_priority && dist > best_frac_score)) {
      best_priority = priority;
      best_frac_score = dist;
      best = v;
    }
  }
  return best;
}

bool MipSolver::CandidateIsFeasible(const std::vector<double>& candidate) const {
  if (candidate.size() != static_cast<std::size_t>(model_.num_vars())) return false;
  const double tol = 1e-6;
  for (VarId v = 0; v < model_.num_vars(); ++v) {
    const Variable& var = model_.var(v);
    const double value = candidate[static_cast<std::size_t>(v)];
    if (value < var.lower - tol || value > var.upper + tol) return false;
    if (var.is_integer && std::abs(value - std::round(value)) > options_.integer_tol) {
      return false;
    }
  }
  for (const Row& row : model_.rows()) {
    double lhs = 0.0;
    for (std::size_t t = 0; t < row.vars.size(); ++t) {
      lhs += row.coeffs[t] * candidate[static_cast<std::size_t>(row.vars[t])];
    }
    const double slack_tol = 1e-6 * (1.0 + std::abs(row.rhs));
    switch (row.sense) {
      case Sense::kLe:
        if (lhs > row.rhs + slack_tol) return false;
        break;
      case Sense::kGe:
        if (lhs < row.rhs - slack_tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - row.rhs) > slack_tol) return false;
        break;
    }
  }
  return true;
}

double MipSolver::Objective(const std::vector<double>& values) const {
  double obj = 0.0;
  for (VarId v = 0; v < model_.num_vars(); ++v) {
    obj += model_.var(v).objective * values[static_cast<std::size_t>(v)];
  }
  return obj;
}

void MipSolver::TryImproveIncumbent(const std::vector<double>& values, MipResult& result,
                                    const Stopwatch& watch) {
  const double obj = Objective(values);
  const double internal = sense_ * obj;
  if (has_incumbent_ && internal <= best_internal_ + options_.objective_tol) return;
  best_internal_ = internal;
  has_incumbent_ = true;
  result.solution.values = values;
  result.solution.objective = obj;
  result.incumbent_trace.push_back({watch.ElapsedSeconds(), obj});
  SFP_LOG_DEBUG << "new incumbent " << obj << " at " << watch.ElapsedSeconds() << "s";
}

double MipSolver::PruneCutoff() const {
  // Internal maximization sense: prune nodes whose bound is at or below
  // the incumbent plus tolerances.
  return best_internal_ + options_.objective_tol +
         options_.relative_gap * std::abs(best_internal_);
}

MipResult MipSolver::Solve() {
  MipResult result;
  Stopwatch watch;

  pool_.clear();
  if (!initial_incumbent_.empty() && CandidateIsFeasible(initial_incumbent_)) {
    TryImproveIncumbent(initial_incumbent_, result, watch);
  }
  std::vector<OpenNode> stack;
  stack.push_back(OpenNode{-1, std::numeric_limits<double>::infinity()});

  bool stopped_early = false;
  std::vector<double> candidate;

  while (!stack.empty()) {
    if (watch.ElapsedSeconds() > options_.time_limit_seconds ||
        result.nodes_explored >= options_.max_nodes) {
      stopped_early = true;
      break;
    }
    const OpenNode node = stack.back();
    stack.pop_back();

    if (has_incumbent_ && node.parent_bound <= PruneCutoff()) {
      continue;  // pruned by the parent's bound
    }

    ApplyNodeBounds(node.record);
    const Solution lp = simplex_.Solve();
    ++result.nodes_explored;

    if (lp.status == SolveStatus::kInfeasible) continue;
    if (lp.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation of a bounded MIP indicates a modelling
      // error; surface it loudly rather than silently mis-solving.
      SFP_CHECK_MSG(false, "unbounded LP relaxation in branch & bound");
    }
    if (lp.status == SolveStatus::kIterationLimit) {
      SFP_LOG_WARN << "node LP hit the iteration limit; dropping node";
      continue;
    }

    const double bound = sense_ * lp.objective;
    if (has_incumbent_ && bound <= PruneCutoff()) continue;

    const VarId branch_var = PickBranchVar(lp.values);
    if (branch_var < 0) {
      TryImproveIncumbent(lp.values, result, watch);
      continue;
    }

    const bool heuristic_due =
        heuristic_ &&
        ((options_.heuristic_period > 0 &&
          (result.nodes_explored - 1) % options_.heuristic_period == 0) ||
         model_.var(branch_var).branch_priority < options_.heuristic_priority_threshold);
    if (heuristic_due) {
      candidate.clear();
      if (heuristic_(lp.values, candidate) && CandidateIsFeasible(candidate)) {
        TryImproveIncumbent(candidate, result, watch);
        if (has_incumbent_ && bound <= PruneCutoff()) continue;
      }
    }

    const double value = lp.values[static_cast<std::size_t>(branch_var)];
    const double floor_value = std::floor(value);
    const Variable& var = model_.var(branch_var);

    // A child whose domain would be empty (possible when the variable's
    // model bounds are themselves fractional) is simply not created.
    const bool down_feasible = floor_value >= var.lower;
    const bool up_feasible = floor_value + 1.0 <= var.upper;
    OpenNode down{-1, bound}, up{-1, bound};
    if (down_feasible) {
      pool_.push_back({{branch_var, var.lower, floor_value}, node.record});
      down.record = static_cast<std::int32_t>(pool_.size() - 1);
    }
    if (up_feasible) {
      pool_.push_back({{branch_var, floor_value + 1.0, var.upper}, node.record});
      up.record = static_cast<std::int32_t>(pool_.size() - 1);
    }

    // Explore the child nearest the fractional value first (plunge).
    if (value - floor_value >= 0.5) {
      if (down_feasible) stack.push_back(down);
      if (up_feasible) stack.push_back(up);
    } else {
      if (up_feasible) stack.push_back(up);
      if (down_feasible) stack.push_back(down);
    }
  }

  result.seconds = watch.ElapsedSeconds();

  // Dual bound: the best bound among unexplored nodes, or the incumbent
  // when the tree was exhausted.
  double open_bound = -std::numeric_limits<double>::infinity();
  for (const OpenNode& node : stack) open_bound = std::max(open_bound, node.parent_bound);
  if (stack.empty()) {
    result.best_bound = has_incumbent_ ? sense_ * best_internal_ : open_bound;
  } else {
    result.best_bound = sense_ * std::max(open_bound, has_incumbent_ ? best_internal_
                                                                     : open_bound);
  }

  if (stopped_early) {
    result.solution.status =
        has_incumbent_ ? SolveStatus::kFeasible : SolveStatus::kTimeLimit;
  } else {
    result.solution.status =
        has_incumbent_ ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
  }
  return result;
}

}  // namespace sfp::lp
