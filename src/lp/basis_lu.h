// Sparse LU factorization of a simplex basis with a product-form eta
// file for pivot updates.
//
// The factorization is a left-looking sparse LU (Gilbert–Peierls shape)
// with Markowitz-flavoured pivoting: columns are ordered by ascending
// nonzero count before elimination, and within a column the pivot is
// chosen among entries passing a relative stability threshold as the
// one sitting in the sparsest original row — balancing fill-in against
// numerical stability the way Markowitz ordering does, without the
// full dynamic count bookkeeping.
//
// After Factorize(), Ftran solves B x = b and Btran solves B' y = c as
// a pair of triangular solves that skip structurally zero positions, so
// the work is proportional to the factor fill plus the solution's
// support instead of m^2. Basis changes are absorbed by Update() into a
// product-form eta file (Forrest–Tomlin-style cheap updates without the
// U-row spike repair, which the refactorization interval makes
// unnecessary at simplex scale); Ftran applies the etas after the LU
// solve, Btran applies their transposes before it.
#pragma once

#include <cstdint>
#include <vector>

namespace sfp::lp {

/// One basis column in sparse form (parallel row-index/value arrays).
struct SparseColumn {
  std::vector<std::int32_t> rows;
  std::vector<double> vals;
};

class BasisLu {
 public:
  /// Factorizes the m x m basis whose columns are `cols` (cols.size()
  /// == m). Clears the eta file. Returns false when the basis is
  /// numerically singular; the factor is then unusable until the next
  /// successful Factorize().
  bool Factorize(const std::vector<SparseColumn>& cols);

  /// Solves B x = b in place (b indexed by original row, x by basis
  /// position), including the eta file.
  void Ftran(std::vector<double>& x) const;

  /// Solves B' y = c in place (c indexed by basis position, y by
  /// original row), including the eta file.
  void Btran(std::vector<double>& y) const;

  /// Absorbs a basis change: position `p` was replaced by a column
  /// whose Ftran image is `w` (dense, size m). Returns false when the
  /// pivot w[p] is too small to update stably — the caller must
  /// refactorize instead.
  bool Update(std::int32_t p, const std::vector<double>& w);

  int num_etas() const { return static_cast<int>(etas_.size()); }

  /// Nonzeros in the factor (L + U, diagonal included).
  std::int64_t fill() const;

 private:
  struct Entry {
    std::int32_t pos;
    double val;
  };
  /// Product-form eta: basis position `p`, pivot reciprocal and the
  /// off-pivot nonzeros of the replaced column's Ftran image.
  struct Eta {
    std::int32_t p = 0;
    double inv_pivot = 0.0;
    std::vector<Entry> off;
  };

  std::int32_t m_ = 0;
  // L is unit lower triangular, U upper triangular, both stored by
  // column in pivot-position space. pivot_row_[k] is the original row
  // chosen as the k-th pivot; col_order_[k] is the basis position
  // eliminated at step k.
  std::vector<std::vector<Entry>> lcols_;
  std::vector<std::vector<Entry>> ucols_;
  std::vector<double> udiag_;
  std::vector<std::int32_t> pivot_row_;
  std::vector<std::int32_t> col_order_;
  std::vector<Eta> etas_;
};

}  // namespace sfp::lp
