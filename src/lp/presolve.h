// LP/MIP presolve: cheap in-place reductions applied before the
// simplex / branch & bound.
//
//  * empty rows       — dropped (or trivial infeasibility detected),
//  * singleton rows   — converted into variable bounds and dropped,
//  * redundant rows   — a row whose worst-case activity already
//                       satisfies it (from the variable bounds alone)
//                       is dropped; one whose best case violates it
//                       flags infeasibility,
//  * integer rounding — integer variables' fractional bounds tighten to
//                       the enclosed integers.
//
// The variable set is untouched, so solutions of the presolved model
// are solutions of the original. Runs to a fixpoint (bounded rounds).
#pragma once

#include "lp/model.h"

namespace sfp::lp {

/// Summary of the reductions applied.
struct PresolveStats {
  int rows_removed = 0;
  int bounds_tightened = 0;
  /// Trivial infeasibility detected (empty/violated row or crossed
  /// bounds); the model is left in its partially-reduced state and
  /// must be treated as infeasible by the caller.
  bool infeasible = false;
};

/// Presolves `model` in place.
PresolveStats Presolve(Model& model);

}  // namespace sfp::lp
