#include "lp/basis_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sfp::lp {
namespace {

/// Entries smaller than this are dropped from the factor; keeps noise
/// fill out of the triangular solves without affecting accuracy at the
/// simplex's 1e-7 tolerances.
constexpr double kDropTol = 1e-13;
/// Relative pivot-stability threshold: a pivot must be at least this
/// fraction of the column's largest eliminated entry.
constexpr double kPivotThreshold = 0.1;
/// Below this absolute magnitude the column is considered singular.
constexpr double kSingularTol = 1e-11;
/// Update pivots smaller than this force a refactorization.
constexpr double kUpdateTol = 1e-9;

}  // namespace

bool BasisLu::Factorize(const std::vector<SparseColumn>& cols) {
  m_ = static_cast<std::int32_t>(cols.size());
  const std::size_t m = static_cast<std::size_t>(m_);
  etas_.clear();
  lcols_.assign(m, {});
  ucols_.assign(m, {});
  udiag_.assign(m, 0.0);
  pivot_row_.assign(m, -1);

  // Markowitz-flavoured static ordering: eliminate sparse columns
  // first, and keep per-row counts to prefer pivots in sparse rows.
  col_order_.resize(m);
  std::iota(col_order_.begin(), col_order_.end(), 0);
  std::stable_sort(col_order_.begin(), col_order_.end(),
                   [&cols](std::int32_t a, std::int32_t b) {
                     return cols[static_cast<std::size_t>(a)].rows.size() <
                            cols[static_cast<std::size_t>(b)].rows.size();
                   });
  std::vector<std::int32_t> row_count(m, 0);
  for (const SparseColumn& col : cols) {
    for (std::int32_t r : col.rows) ++row_count[static_cast<std::size_t>(r)];
  }

  // row_pos[orig_row] = elimination step at which the row was pivoted,
  // or -1 while still active.
  std::vector<std::int32_t> row_pos(m, -1);
  std::vector<double> work(m, 0.0);

  for (std::size_t k = 0; k < m; ++k) {
    const SparseColumn& col = cols[static_cast<std::size_t>(col_order_[k])];
    for (std::size_t t = 0; t < col.rows.size(); ++t) {
      work[static_cast<std::size_t>(col.rows[t])] = col.vals[t];
    }

    // Left-looking elimination through the previous pivots in order.
    // Skipping structurally/numerically zero multipliers keeps the work
    // proportional to the column's fill rather than k.
    std::vector<Entry>& ucol = ucols_[k];
    for (std::size_t t = 0; t < k; ++t) {
      const double ut = work[static_cast<std::size_t>(pivot_row_[t])];
      if (ut == 0.0) continue;
      work[static_cast<std::size_t>(pivot_row_[t])] = 0.0;
      if (std::abs(ut) > kDropTol) {
        ucol.push_back({static_cast<std::int32_t>(t), ut});
      }
      for (const Entry& e : lcols_[t]) {
        work[static_cast<std::size_t>(e.pos)] -= e.val * ut;  // pos = orig row here
      }
    }

    // Threshold pivoting among the still-active rows: require relative
    // stability, then prefer the sparsest original row (Markowitz tie
    // break), then magnitude.
    double amax = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (row_pos[r] < 0) amax = std::max(amax, std::abs(work[r]));
    }
    if (amax < kSingularTol) return false;
    std::int32_t pivot = -1;
    std::int32_t best_count = 0;
    double best_mag = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (row_pos[r] >= 0) continue;
      const double mag = std::abs(work[r]);
      if (mag < kPivotThreshold * amax) continue;
      const std::int32_t count = row_count[r];
      if (pivot < 0 || count < best_count || (count == best_count && mag > best_mag)) {
        pivot = static_cast<std::int32_t>(r);
        best_count = count;
        best_mag = mag;
      }
    }

    const double diag = work[static_cast<std::size_t>(pivot)];
    work[static_cast<std::size_t>(pivot)] = 0.0;
    pivot_row_[k] = pivot;
    row_pos[static_cast<std::size_t>(pivot)] = static_cast<std::int32_t>(k);
    udiag_[k] = diag;

    std::vector<Entry>& lcol = lcols_[k];
    for (std::size_t r = 0; r < m; ++r) {
      if (work[r] == 0.0) continue;
      if (row_pos[r] < 0 && std::abs(work[r]) > kDropTol) {
        // Stored by original row for now; remapped to pivot positions
        // below once every row has one.
        lcol.push_back({static_cast<std::int32_t>(r), work[r] / diag});
      }
      work[r] = 0.0;
    }
  }

  // Remap L entries from original rows to pivot positions so the
  // triangular solves run entirely in position space.
  for (std::size_t k = 0; k < m; ++k) {
    for (Entry& e : lcols_[k]) e.pos = row_pos[static_cast<std::size_t>(e.pos)];
  }
  return true;
}

void BasisLu::Ftran(std::vector<double>& x) const {
  const std::size_t m = static_cast<std::size_t>(m_);
  // Apply the row permutation: position k reads original row pivot_row_[k].
  std::vector<double> tmp(m);
  for (std::size_t k = 0; k < m; ++k) tmp[k] = x[static_cast<std::size_t>(pivot_row_[k])];

  // Forward solve L z = P b; zero positions contribute nothing.
  for (std::size_t k = 0; k < m; ++k) {
    const double v = tmp[k];
    if (v == 0.0) continue;
    for (const Entry& e : lcols_[k]) tmp[static_cast<std::size_t>(e.pos)] -= e.val * v;
  }
  // Backward solve U t = z.
  for (std::size_t k = m; k-- > 0;) {
    double v = tmp[k];
    if (v == 0.0) continue;
    v /= udiag_[k];
    tmp[k] = v;
    for (const Entry& e : ucols_[k]) tmp[static_cast<std::size_t>(e.pos)] -= e.val * v;
  }
  // Undo the column ordering: step k solved basis position col_order_[k].
  for (std::size_t k = 0; k < m; ++k) x[static_cast<std::size_t>(col_order_[k])] = tmp[k];

  // Product-form etas, oldest first.
  for (const Eta& eta : etas_) {
    const std::size_t p = static_cast<std::size_t>(eta.p);
    const double t = x[p] * eta.inv_pivot;
    x[p] = t;
    if (t == 0.0) continue;
    for (const Entry& e : eta.off) x[static_cast<std::size_t>(e.pos)] -= e.val * t;
  }
}

void BasisLu::Btran(std::vector<double>& y) const {
  const std::size_t m = static_cast<std::size_t>(m_);
  // Transposed etas, newest first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const std::size_t p = static_cast<std::size_t>(it->p);
    double acc = y[p];
    for (const Entry& e : it->off) acc -= y[static_cast<std::size_t>(e.pos)] * e.val;
    y[p] = acc * it->inv_pivot;
  }

  std::vector<double> tmp(m);
  for (std::size_t k = 0; k < m; ++k) tmp[k] = y[static_cast<std::size_t>(col_order_[k])];

  // Solve U' w = c: forward over columns, each a dot with prior w.
  std::vector<double> w(m);
  for (std::size_t k = 0; k < m; ++k) {
    double acc = tmp[k];
    for (const Entry& e : ucols_[k]) acc -= e.val * w[static_cast<std::size_t>(e.pos)];
    w[k] = acc / udiag_[k];
  }
  // Solve L' z = w: backward over columns.
  for (std::size_t k = m; k-- > 0;) {
    double acc = w[k];
    for (const Entry& e : lcols_[k]) acc -= e.val * w[static_cast<std::size_t>(e.pos)];
    w[k] = acc;
  }
  for (std::size_t k = 0; k < m; ++k) y[static_cast<std::size_t>(pivot_row_[k])] = w[k];
}

bool BasisLu::Update(std::int32_t p, const std::vector<double>& w) {
  const double pivot = w[static_cast<std::size_t>(p)];
  if (std::abs(pivot) < kUpdateTol) return false;
  Eta eta;
  eta.p = p;
  eta.inv_pivot = 1.0 / pivot;
  for (std::int32_t i = 0; i < m_; ++i) {
    if (i == p) continue;
    const double v = w[static_cast<std::size_t>(i)];
    if (std::abs(v) > kDropTol) eta.off.push_back({i, v});
  }
  etas_.push_back(std::move(eta));
  return true;
}

std::int64_t BasisLu::fill() const {
  std::int64_t total = m_;  // diagonal
  for (const auto& col : lcols_) total += static_cast<std::int64_t>(col.size());
  for (const auto& col : ucols_) total += static_cast<std::int64_t>(col.size());
  return total;
}

}  // namespace sfp::lp
