// Linear/integer program model builder.
//
// `lp::Model` is the user-facing container: variables with bounds,
// objective coefficients and an integrality flag; rows with a sense and
// right-hand side. `Simplex` (simplex.h) solves the LP relaxation;
// `MipSolver` (mip.h) runs branch & bound over the integral variables.
//
// Conventions:
//  * the model stores a MAXIMIZATION objective if `maximize` is set;
//    the simplex internally minimizes and flips signs,
//  * infinite bounds are +/-kInfinity,
//  * row senses are <=, >=, ==.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace sfp::lp {

/// Positive infinity marker for bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Row sense of a linear constraint.
enum class Sense { kLe, kGe, kEq };

/// Index of a variable in a Model.
using VarId = std::int32_t;

/// Index of a row in a Model.
using RowId = std::int32_t;

/// One linear constraint: sum(coeff_i * var_i) <sense> rhs.
struct Row {
  std::vector<VarId> vars;
  std::vector<double> coeffs;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Variable metadata.
struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
  /// Branching priority in branch & bound: higher priorities are
  /// branched first. SFP assigns physical-placement variables the
  /// highest priority, then chain indicators, then box placements.
  int branch_priority = 0;
  std::string name;
};

/// In-memory LP/MIP model.
class Model {
 public:
  /// Adds a variable and returns its id.
  VarId AddVar(double lower, double upper, double objective, bool is_integer,
               std::string name = {});

  /// Convenience: binary variable.
  VarId AddBinaryVar(double objective, std::string name = {}) {
    return AddVar(0.0, 1.0, objective, /*is_integer=*/true, std::move(name));
  }

  /// Adds a constraint row; `vars` and `coeffs` must be the same length.
  /// Repeated variables within one row are allowed and are summed.
  RowId AddRow(std::vector<VarId> vars, std::vector<double> coeffs, Sense sense,
               double rhs, std::string name = {});

  /// Appends one coefficient to an existing row (incremental model
  /// growth: a new tenant's column touches a handful of capacity rows).
  /// Callers holding a live `Simplex` mirror the edit via
  /// `Simplex::AddColumn`/`Simplex::AddRow`.
  void AddRowCoefficient(RowId row, VarId var, double coeff);

  /// Sets the optimization direction (default: maximize).
  void SetMaximize(bool maximize) { maximize_ = maximize; }
  bool maximize() const { return maximize_; }

  /// Tightens a variable's bounds (used by branch & bound).
  void SetVarBounds(VarId var, double lower, double upper);

  /// Replaces the whole row set (used by presolve to drop redundant
  /// rows). Every referenced variable must exist.
  void ReplaceRows(std::vector<Row> rows);

  void SetBranchPriority(VarId var, int priority);

  std::int32_t num_vars() const { return static_cast<std::int32_t>(vars_.size()); }
  std::int32_t num_rows() const { return static_cast<std::int32_t>(rows_.size()); }
  const Variable& var(VarId id) const { return vars_[static_cast<std::size_t>(id)]; }
  const Row& row(RowId id) const { return rows_[static_cast<std::size_t>(id)]; }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Total number of structural nonzeros.
  std::size_t num_nonzeros() const;

  /// Returns the ids of all integer variables.
  std::vector<VarId> IntegerVars() const;

 private:
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
  bool maximize_ = true;
};

/// Result status of an LP or MIP solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
  /// MIP only: stopped at the time limit with at least one incumbent.
  kFeasible,
};

/// Human-readable status name.
const char* ToString(SolveStatus status);

/// Solution of an LP or MIP solve.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Objective in the model's direction (maximization value when the
  /// model maximizes).
  double objective = 0.0;
  /// Value per variable (size == model.num_vars()) when status is
  /// kOptimal/kFeasible/kIterationLimit.
  std::vector<double> values;

  bool feasible() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
};

}  // namespace sfp::lp
