// Branch & bound mixed-integer solver over the simplex LP relaxation.
//
// Depth-first search ("plunging") with most-fractional branching within
// the highest branch-priority class, warm-started node LPs on a single
// shared Simplex, a wall-clock time limit with an incumbent trace (used
// by the Fig. 9 early-termination experiment), and an optional
// problem-specific rounding heuristic for finding incumbents early.
//
// Memory: the open-node stack stores one bound change per node plus a
// parent pointer into an append-only pool, so a path's bound set is
// shared rather than copied — worst-case memory is O(nodes), not
// O(nodes x depth).
#pragma once

#include <functional>
#include <vector>

#include "common/stopwatch.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sfp::lp {

/// Branch & bound options.
struct MipOptions {
  /// Wall-clock limit in seconds; infinity = run to completion.
  double time_limit_seconds = kInfinity;
  /// Absolute objective tolerance for pruning and optimality.
  double objective_tol = 1e-6;
  /// Relative optimality gap: a node is pruned when its bound is within
  /// `relative_gap` x |incumbent| of the incumbent. 0 = exact.
  double relative_gap = 0.0;
  /// Integrality tolerance.
  double integer_tol = 1e-6;
  /// Node cap (safety net).
  std::int64_t max_nodes = 5'000'000;
  /// Invoke the rounding heuristic every this many nodes (0 = never).
  int heuristic_period = 20;
  /// Additionally invoke the heuristic whenever the branching variable's
  /// priority is below this value — i.e. all structurally important
  /// variables are already integral. INT_MIN disables.
  int heuristic_priority_threshold = -2147483647;
  SimplexOptions simplex;
};

/// A timestamped incumbent improvement.
struct IncumbentEvent {
  double seconds = 0.0;
  double objective = 0.0;
};

/// Branch & bound result.
struct MipResult {
  Solution solution;
  /// Best dual bound at termination (== objective when optimal).
  double best_bound = 0.0;
  std::int64_t nodes_explored = 0;
  double seconds = 0.0;
  /// Every incumbent improvement, in discovery order.
  std::vector<IncumbentEvent> incumbent_trace;
};

/// Branch & bound solver. The heuristic, when set, receives the node
/// LP's fractional values and may propose a full integral assignment;
/// the solver re-checks it against every row before accepting.
class MipSolver {
 public:
  /// Heuristic callback: receives node-LP values, fills `candidate`
  /// with a complete assignment; returns false to decline.
  using Heuristic =
      std::function<bool(const std::vector<double>& lp_values, std::vector<double>& candidate)>;

  MipSolver(const Model& model, MipOptions options = {});

  /// Installs a rounding heuristic (optional).
  void SetHeuristic(Heuristic heuristic) { heuristic_ = std::move(heuristic); }

  /// Seeds branch & bound with a known-feasible assignment (e.g. from a
  /// primal heuristic run on the root relaxation). Checked against
  /// every row at Solve() start; an infeasible seed is ignored.
  void SetInitialIncumbent(std::vector<double> values) {
    initial_incumbent_ = std::move(values);
  }

  /// Runs branch & bound.
  MipResult Solve();

 private:
  struct BoundChange {
    VarId var;
    double lower;
    double upper;
  };
  /// Append-only pool entry: one change + parent link (-1 = root).
  struct NodeRecord {
    BoundChange change;
    std::int32_t parent;
  };
  /// Open node: pool index of its last change (or -1 for the root) and
  /// the LP bound inherited from its parent.
  struct OpenNode {
    std::int32_t record;
    double parent_bound;
  };

  void ApplyNodeBounds(std::int32_t record);
  /// Index of the branching variable, or -1 if the LP point is integral.
  VarId PickBranchVar(const std::vector<double>& values) const;
  bool CandidateIsFeasible(const std::vector<double>& candidate) const;
  double Objective(const std::vector<double>& values) const;
  void TryImproveIncumbent(const std::vector<double>& values, MipResult& result,
                           const Stopwatch& watch);
  /// Incumbent-relative pruning threshold in internal (max) sense.
  double PruneCutoff() const;

  const Model& model_;
  MipOptions options_;
  Simplex simplex_;
  Heuristic heuristic_;
  std::vector<double> initial_incumbent_;
  std::vector<VarId> int_vars_;
  std::vector<NodeRecord> pool_;
  double sense_ = 1.0;  // +1 maximize, -1 minimize (internal max-sense)
  double best_internal_ = 0.0;
  bool has_incumbent_ = false;
};

}  // namespace sfp::lp
