// Branch & bound mixed-integer solver over the simplex LP relaxation.
//
// Two tree-search modes share one node-processing core:
//  * deterministic (default) — serial depth-first search ("plunging")
//    with a fixed node order on a single worker, so node counts,
//    incumbent traces and solutions are bit-reproducible run to run,
//  * parallel — a best-first shared node queue worked by a
//    common::WorkerPool; each worker plunges depth-first from the node
//    it pops (keeping the child nearest the fractional value, pushing
//    the sibling), re-warm-starting its private Simplex from the parent
//    basis snapshot carried in the node. The incumbent cutoff is a
//    lock-free atomic read on the hot pruning path.
//
// Branching is by pseudocosts (objective degradation per unit of
// fractional distance, learned from child LP solves) within the highest
// branch-priority class, falling back to the most-fractional rule until
// costs are initialized. A wall-clock time limit with an incumbent
// trace drives the Fig. 9 early-termination experiment; an optional
// problem-specific rounding heuristic finds incumbents early.
//
// Memory: each open node stores one bound change plus a shared pointer
// to its parent's chain, so a path's bound set is shared rather than
// copied — worst-case memory is O(open nodes), not O(nodes x depth).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stopwatch.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sfp::lp {

/// Branch & bound options.
struct MipOptions {
  /// Wall-clock limit in seconds; infinity = run to completion.
  double time_limit_seconds = kInfinity;
  /// Absolute objective tolerance for pruning and optimality.
  double objective_tol = 1e-6;
  /// Relative optimality gap: a node is pruned when its bound is within
  /// `relative_gap` x |incumbent| of the incumbent. 0 = exact.
  double relative_gap = 0.0;
  /// Integrality tolerance.
  double integer_tol = 1e-6;
  /// Node cap (safety net).
  std::int64_t max_nodes = 5'000'000;
  /// Invoke the rounding heuristic every this many nodes (0 = never).
  int heuristic_period = 20;
  /// Additionally invoke the heuristic whenever the branching variable's
  /// priority is below this value — i.e. all structurally important
  /// variables are already integral. INT_MIN disables.
  int heuristic_priority_threshold = -2147483647;
  /// Serial depth-first search with a fixed node order: node counts and
  /// incumbent traces are reproducible run to run. Turn off to search
  /// the tree with `num_workers` parallel workers.
  bool deterministic = true;
  /// Parallel tree-search workers when `deterministic` is off
  /// (0 = common::DefaultParallelism()).
  int num_workers = 0;
  /// Branching variable selection rule.
  enum class Branching { kMostFractional, kPseudocost };
  Branching branching = Branching::kPseudocost;
  /// LP-solve observations per direction before a variable's own
  /// pseudocost estimate is trusted over the global average.
  int pseudocost_reliability = 1;
  SimplexOptions simplex;
};

/// A timestamped incumbent improvement.
struct IncumbentEvent {
  double seconds = 0.0;
  double objective = 0.0;
};

/// A timestamped (incumbent, dual bound) pair — the optimality-gap
/// trace, sampled at every incumbent improvement. `bound` is the best
/// dual bound known at that moment (the root LP bound once available).
struct GapEvent {
  double seconds = 0.0;
  double objective = 0.0;
  double bound = 0.0;
};

/// Branch & bound result.
struct MipResult {
  Solution solution;
  /// Best dual bound at termination (== objective when optimal). For an
  /// infeasible exhausted tree this is the empty-set bound: -infinity
  /// when maximizing, +infinity when minimizing.
  double best_bound = 0.0;
  std::int64_t nodes_explored = 0;
  /// Nodes abandoned because their LP hit the iteration limit; their
  /// parent bounds are folded into `best_bound` so it stays sound.
  std::int64_t nodes_dropped = 0;
  /// Simplex work across all workers.
  std::int64_t simplex_pivots = 0;
  std::int64_t refactorizations = 0;
  std::int64_t ftran_nnz = 0;
  double seconds = 0.0;
  /// Every incumbent improvement, in discovery order.
  std::vector<IncumbentEvent> incumbent_trace;
  /// Gap trace: (incumbent, dual bound) at each improvement.
  std::vector<GapEvent> gap_trace;
};

/// Branch & bound solver. The heuristic, when set, receives the node
/// LP's fractional values and may propose a full integral assignment;
/// the solver re-checks it against every row before accepting. In
/// parallel mode heuristic invocations are serialized, so the callback
/// may keep mutable state (e.g. an Rng) without its own locking.
class MipSolver {
 public:
  /// Heuristic callback: receives node-LP values, fills `candidate`
  /// with a complete assignment; returns false to decline.
  using Heuristic =
      std::function<bool(const std::vector<double>& lp_values, std::vector<double>& candidate)>;

  MipSolver(const Model& model, MipOptions options = {});

  /// Installs a rounding heuristic (optional).
  void SetHeuristic(Heuristic heuristic) { heuristic_ = std::move(heuristic); }

  /// Seeds branch & bound with a known-feasible assignment (e.g. from a
  /// primal heuristic run on the root relaxation). Checked against
  /// every row at Solve() start; an infeasible seed is ignored.
  void SetInitialIncumbent(std::vector<double> values) {
    initial_incumbent_ = std::move(values);
  }

  /// Runs branch & bound.
  MipResult Solve();

 private:
  struct BoundChange {
    VarId var;
    double lower;
    double upper;
  };
  /// One branching decision + shared parent link (nullptr = root).
  struct NodeChain {
    BoundChange change;
    std::shared_ptr<const NodeChain> parent;
  };
  /// Open node: its bound-change chain, the parent's basis snapshot
  /// (parallel mode), the LP bound inherited from the parent, and how
  /// the node was created (for pseudocost updates).
  struct OpenNode {
    std::shared_ptr<const NodeChain> chain;
    std::shared_ptr<const Simplex::BasisState> warm;
    double parent_bound = kInfinity;  // internal max sense
    VarId branch_var = -1;
    int branch_dir = 0;      // -1 down child, +1 up child
    double branch_frac = 0;  // fractional distance covered by the branch
    std::uint64_t seq = 0;   // creation order; heap tie-break
  };
  /// Children produced by one node expansion. `preferred` is the child
  /// nearest the fractional value (plunged into first).
  struct Children {
    bool has_preferred = false, has_other = false;
    OpenNode preferred, other;
  };
  /// Per-direction pseudocost accumulators ([0]=down, [1]=up).
  struct Pseudocost {
    double sum[2] = {0.0, 0.0};
    std::int64_t count[2] = {0, 0};
  };

  void ApplyNodeBounds(Simplex& simplex, const NodeChain* chain) const;
  /// Index of the branching variable, or -1 if the LP point is integral.
  VarId PickBranchVar(const std::vector<double>& values);
  bool CandidateIsFeasible(const std::vector<double>& candidate) const;
  double Objective(const std::vector<double>& values) const;
  void TryImproveIncumbent(const std::vector<double>& values, const Stopwatch& watch);
  void RecordDroppedNode(double parent_bound);
  void UpdatePseudocost(VarId var, int dir, double frac, double degradation);
  /// Expands one node on `simplex`: solves its LP, updates incumbent /
  /// pseudocosts / drop accounting, and fills `out` with surviving
  /// children. `snapshot_basis` attaches a basis snapshot to children.
  void ProcessNode(Simplex& simplex, const OpenNode& node, bool snapshot_basis,
                   const Stopwatch& watch, Children& out);
  MipResult FinishResult(const Stopwatch& watch, double open_internal, bool stopped_early);

  /// Run the search; both return the best bound among nodes left open.
  double SolveSerial(const Stopwatch& watch);
  double SolveParallel(const Stopwatch& watch);
  /// Parallel worker body: pop / plunge / push until the tree is done.
  void WorkerRun(Simplex& simplex, const Stopwatch& watch);
  /// Heap order: highest parent bound first, earliest seq on ties.
  static bool WorseNode(const OpenNode& a, const OpenNode& b);

  const Model& model_;
  MipOptions options_;
  Simplex simplex_;  // serial-mode engine (kept warm across nodes)
  Heuristic heuristic_;
  std::vector<double> initial_incumbent_;
  std::vector<VarId> int_vars_;
  double sense_ = 1.0;  // +1 maximize, -1 minimize (internal max-sense)

  // --- shared solve state (parallel workers touch all of this) -------
  std::mutex incumbent_mutex_;  // incumbent, traces, drop accounting
  std::mutex pseudo_mutex_;
  std::mutex heuristic_mutex_;
  /// Lock-free prune threshold (internal max sense): nodes bounded at
  /// or below it cannot improve the incumbent.
  std::atomic<double> cutoff_{-kInfinity};
  std::atomic<std::int64_t> nodes_explored_{0};
  std::atomic<std::int64_t> nodes_dropped_{0};
  std::atomic<bool> stop_{false};
  double best_internal_ = -kInfinity;
  bool has_incumbent_ = false;
  double dropped_internal_ = -kInfinity;  // max bound among dropped nodes
  double root_bound_internal_ = kInfinity;
  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<Pseudocost> pseudo_;
  double pseudo_global_sum_[2] = {0.0, 0.0};
  std::int64_t pseudo_global_count_[2] = {0, 0};
  MipResult result_;

  // Parallel-mode tree state (guarded by tree_mutex_).
  std::mutex tree_mutex_;
  std::condition_variable tree_cv_;
  std::vector<OpenNode> heap_;  // max-heap on (parent_bound, -seq)
  int active_workers_ = 0;
};

}  // namespace sfp::lp
