// Bounded-variable two-phase revised simplex.
//
// Solves  min/max c'x  s.t.  rows (<=, >=, ==),  l <= x <= u.
//
// Implementation notes (see DESIGN.md "Solver internals"):
//  * every row gets a slack variable whose bounds encode the row sense,
//    so the working problem is Ax = b with box-constrained x,
//  * the basis is kept as a sparse LU factorization (Markowitz-style
//    pivoting, see basis_lu.h) refreshed with product-form eta updates,
//    so Ftran/Btran/pricing are sparse triangular solves; it is
//    refactorized every `refactor_interval` pivots or on numerical
//    drift. `SimplexOptions::use_dense_inverse` switches to the legacy
//    dense Gauss-Jordan inverse with product-form row updates, kept as
//    the differential reference for the sparse kernels,
//  * phase 1 is the composite method: basic variables outside their
//    bounds get a +/-1 cost pushing them back inside; an infeasible
//    variable blocks the ratio test when it reaches the bound it
//    violated, which guarantees monotone progress,
//  * degeneracy is handled by falling back to Bland's rule after a
//    stretch of non-improving pivots.
//
// The solver supports warm restarts for branch & bound: callers may
// tighten/relax variable bounds between Solve() calls and the previous
// basis is reused (phase 1 repairs any resulting infeasibility).
// SaveBasis()/RestoreBasis() snapshot and transplant a basis across
// Simplex instances bound to the same Model — the parallel tree search
// warm-starts each node LP from its parent's snapshot this way.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/basis_lu.h"
#include "lp/model.h"

namespace sfp::lp {

/// Tuning knobs for the simplex.
struct SimplexOptions {
  /// Bound/feasibility tolerance.
  double feas_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double opt_tol = 1e-7;
  /// Hard cap on total simplex iterations (phases 1+2 combined).
  std::int64_t max_iterations = 200000;
  /// Basis refactorization period in pivots (dense inverse rebuild or
  /// sparse LU eta-file flush).
  int refactor_interval = 120;
  /// Pivots without objective progress before switching to Bland's rule.
  int bland_trigger = 400;
  /// Use the legacy dense basis inverse instead of the sparse LU
  /// kernels. Kept as the slow-but-simple differential reference.
  bool use_dense_inverse = false;
};

/// Revised simplex engine bound to one Model. The Model's rows and
/// variables must not be added/removed after construction; variable
/// bounds may change via SetVarBounds between solves.
class Simplex {
 public:
  struct Stats {
    std::int64_t iterations = 0;
    std::int64_t phase1_iterations = 0;
    int refactorizations = 0;
    /// Nonzeros of all Ftran results (sparse path; dense Ftrans count
    /// every position). Tracks how sparse the pivot columns stay.
    std::int64_t ftran_nnz = 0;
  };

  /// Opaque basis snapshot: which variable sits in each basis position
  /// plus every variable's nonbasic status. Valid across Simplex
  /// instances built from the same Model.
  struct BasisState {
    std::vector<std::int32_t> basis;
    std::vector<std::uint8_t> status;
  };

  explicit Simplex(const Model& model, SimplexOptions options = {});

  /// Updates a structural variable's bounds (warm-start friendly).
  void SetVarBounds(VarId var, double lower, double upper);

  /// Solves from the current basis (slack basis on first call).
  Solution Solve();

  /// Discards the warm basis; the next Solve() starts from slacks.
  void ResetBasis();

  /// Snapshots the current basis (meaningful after a Solve()).
  BasisState SaveBasis() const;
  /// Adopts a snapshot from a previous Solve() — possibly of another
  /// Simplex instance on the same Model. The factorization is rebuilt
  /// on the next Solve(); a numerically singular snapshot falls back to
  /// the slack basis.
  void RestoreBasis(const BasisState& state);

  const Stats& stats() const { return stats_; }

  /// Primal value of a structural variable after a feasible Solve().
  double Value(VarId var) const { return x_[static_cast<std::size_t>(var)]; }

 private:
  enum class VStatus : std::uint8_t { kBasic, kAtLower, kAtUpper, kFreeNb };

  struct Column {
    std::vector<std::int32_t> rows;
    std::vector<double> vals;
  };

  // --- setup ---------------------------------------------------------
  void BuildColumns(const Model& model);
  void ResetBasisToSlacks();
  void SnapNonbasicToBounds();
  void ComputeBasicValues();
  bool Refactorize();  // false if basis singular

  // --- iteration pieces ---------------------------------------------
  // Multiplies w = Binv * A_j for column j.
  void Ftran(std::int32_t j, std::vector<double>& w);
  // y = cost_B' * Binv for the given per-variable cost vector.
  void ComputeDuals(const std::vector<double>& cost, std::vector<double>& y) const;
  double ReducedCost(std::int32_t j, const std::vector<double>& cost,
                     const std::vector<double>& y) const;

  struct Entering {
    std::int32_t var = -1;
    int direction = 0;  // +1 increase, -1 decrease
    double reduced_cost = 0.0;
  };
  Entering PriceEntering(const std::vector<double>& cost, const std::vector<double>& y,
                         bool bland) const;

  struct RatioResult {
    double step = 0.0;
    std::int32_t leaving_pos = -1;  // basis position; -1 = bound flip
    bool leaving_at_upper = false;
    bool unbounded = false;
  };
  RatioResult RatioTest(const Entering& e, const std::vector<double>& w,
                        bool phase1, bool bland) const;

  void ApplyStep(const Entering& e, const std::vector<double>& w, const RatioResult& r);

  // Runs pricing/ratio/pivot until optimal for `cost`. `phase1` enables
  // the composite-infeasibility rules. Returns the terminal status.
  SolveStatus Iterate(const std::vector<double>& cost, bool phase1);

  double TotalInfeasibility() const;
  void BuildPhase1Cost(std::vector<double>& cost) const;

  // Dense Gauss-Jordan rebuild of binv_ (reference path).
  bool RefactorizeDense();
  // Sparse LU rebuild of lu_ from the current basis.
  bool RefactorizeSparse();

  // --- data ----------------------------------------------------------
  SimplexOptions options_;
  std::int32_t num_rows_ = 0;
  std::int32_t num_struct_ = 0;
  std::int32_t num_total_ = 0;  // structural + slack

  std::vector<Column> columns_;   // structural columns only
  std::vector<double> lower_, upper_, cost_;  // size num_total_
  std::vector<double> rhs_;                   // size num_rows_
  bool maximize_ = true;

  std::vector<VStatus> status_;       // size num_total_
  std::vector<std::int32_t> basis_;   // size num_rows_ (var per basis pos)
  std::vector<double> x_;             // size num_total_
  std::vector<double> binv_;          // dense num_rows_^2, row-major (dense path)
  BasisLu lu_;                        // sparse path
  bool basis_valid_ = false;
  /// A restored snapshot needs a fresh factorization before use.
  bool needs_refactor_ = false;
  int pivots_since_refactor_ = 0;
  /// Snapshot of stats_.iterations at Solve() entry, so the iteration
  /// limit applies per solve rather than across warm restarts.
  std::int64_t iterations_at_solve_start_ = 0;

  Stats stats_;
};

}  // namespace sfp::lp
