// Bounded-variable two-phase revised simplex with a dual-simplex
// warm-restart path for incremental re-solves.
//
// Solves  min/max c'x  s.t.  rows (<=, >=, ==),  l <= x <= u.
//
// Implementation notes (see DESIGN.md "Solver internals" and
// "Incremental admission"):
//  * every row gets a slack variable whose bounds encode the row sense,
//    so the working problem is Ax = b with box-constrained x,
//  * the basis is kept as a sparse LU factorization (Markowitz-style
//    pivoting, see basis_lu.h) refreshed with product-form eta updates,
//    so Ftran/Btran/pricing are sparse triangular solves; it is
//    refactorized every `refactor_interval` pivots or on numerical
//    drift. `SimplexOptions::use_dense_inverse` switches to the legacy
//    dense Gauss-Jordan inverse with product-form row updates, kept as
//    the differential reference for the sparse kernels,
//  * phase 1 is the composite method: basic variables outside their
//    bounds get a +/-1 cost pushing them back inside; an infeasible
//    variable blocks the ratio test when it reaches the bound it
//    violated, which guarantees monotone progress,
//  * degeneracy is handled by falling back to Bland's rule after a
//    stretch of non-improving pivots.
//
// The solver supports warm restarts for branch & bound: callers may
// tighten/relax variable bounds between Solve() calls and the previous
// basis is reused (phase 1 repairs any resulting infeasibility).
// SaveBasis()/RestoreBasis() snapshot and transplant a basis across
// Simplex instances bound to the same Model — the parallel tree search
// warm-starts each node LP from its parent's snapshot this way. A
// snapshot taken before the model grew (AddColumn/AddRow) remaps onto
// the larger instance: appended variables start nonbasic at a bound and
// appended rows' slacks start basic.
//
// Incremental re-solves (SimplexOptions::warm_dual): when the previous
// optimal basis is still dual feasible — the common case after a bound
// edit or a column append, i.e. a tenant arrival/departure in SFP's
// admission model — Solve() repairs primal feasibility with dual
// simplex pivots from that basis instead of re-running phase 1 from
// slacks, so the work is proportional to the perturbation rather than
// the model. The sparse-LU factors survive bound edits and column
// appends unchanged (the basis set is untouched) and are only rebuilt
// after row appends, RestoreBasis transplants, or the usual
// refactorization interval. Any anomaly (dual infeasibility that a
// bound flip cannot repair, a pivot budget blowout, a singular basis)
// degrades to the composite phase 1 — the dual path changes cost,
// never the answer.
//
// SimplexOptions::incremental additionally compresses fixed columns
// (lower == upper) out of the per-iteration scans: pricing walks a
// maintained candidate list and the basic-value residual reuses a
// running "fixed activity" vector, so a million committed admission
// columns cost nothing per re-solve. Both flags default off; the
// defaults are bit-identical to the historical solver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lp/basis_lu.h"
#include "lp/model.h"

namespace sfp::lp {

/// Tuning knobs for the simplex.
struct SimplexOptions {
  /// Bound/feasibility tolerance.
  double feas_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double opt_tol = 1e-7;
  /// Hard cap on total simplex iterations (phases 1+2 combined).
  std::int64_t max_iterations = 200000;
  /// Basis refactorization period in pivots (dense inverse rebuild or
  /// sparse LU eta-file flush).
  int refactor_interval = 120;
  /// Pivots without objective progress before switching to Bland's rule.
  int bland_trigger = 400;
  /// Use the legacy dense basis inverse instead of the sparse LU
  /// kernels. Kept as the slow-but-simple differential reference.
  bool use_dense_inverse = false;
  /// Warm re-solves try a dual-simplex repair from the previous basis
  /// before falling back to composite phase 1 (see header comment).
  bool warm_dual = false;
  /// Compress fixed columns out of pricing and residual scans so a
  /// re-solve costs O(perturbation), not O(model). Changes floating-
  /// point summation order, so it is opt-in; off is bit-identical to
  /// the historical solver.
  bool incremental = false;
  /// Copy primal values into Solution::values. Incremental callers
  /// that read single variables via Value() turn this off to avoid an
  /// O(n) copy per re-solve.
  bool report_values = true;
  /// Dual-phase pivot budget before degrading to phase 1 (0 = auto:
  /// max(200, 4 * rows)).
  std::int64_t max_dual_iterations = 0;
};

/// Revised simplex engine bound to one Model snapshot. Variable bounds
/// may change via SetVarBounds between solves; the model may *grow*
/// between solves when the caller mirrors its Model::AddVar /
/// Model::AddRow / Model::AddRowCoefficient edits through AddColumn /
/// AddRow (appends only — nothing may be removed or reordered).
class Simplex {
 public:
  struct Stats {
    std::int64_t iterations = 0;
    std::int64_t phase1_iterations = 0;
    /// Dual-simplex repair pivots (warm_dual path).
    std::int64_t dual_iterations = 0;
    /// Warm solves that attempted the dual repair path.
    std::int64_t warm_attempts = 0;
    /// Warm solves the dual path carried to primal feasibility without
    /// degrading to phase 1.
    std::int64_t warm_successes = 0;
    int refactorizations = 0;
    /// Nonzeros of all Ftran results (sparse path; dense Ftrans count
    /// every position). Tracks how sparse the pivot columns stay.
    std::int64_t ftran_nnz = 0;
  };

  /// Opaque basis snapshot: which variable sits in each basis position
  /// plus every variable's nonbasic status, stamped with the model
  /// shape it was taken from. Valid across Simplex instances built
  /// from the same Model, and across *append-only* growth: restoring a
  /// snapshot into a larger instance remaps old slack ids and defaults
  /// the appended variables/rows (new vars nonbasic, new slacks basic).
  struct BasisState {
    std::vector<std::int32_t> basis;
    std::vector<std::uint8_t> status;
    /// Shape at SaveBasis() time; -1 (legacy/aggregate-built snapshots)
    /// means "same shape as the restoring instance".
    std::int32_t num_struct = -1;
    std::int32_t num_rows = -1;
  };

  explicit Simplex(const Model& model, SimplexOptions options = {});

  /// Updates a structural variable's bounds (warm-start friendly).
  void SetVarBounds(VarId var, double lower, double upper);

  /// Appends a structural variable (mirror of Model::AddVar plus its
  /// Model::AddRowCoefficient entries). The current basis — and the
  /// sparse-LU factors — stay valid: the new column starts nonbasic at
  /// a bound. Returns the new variable's id.
  VarId AddColumn(double lower, double upper, double objective,
                  std::span<const RowId> rows, std::span<const double> coeffs);

  /// Appends a constraint row (mirror of Model::AddRow over existing
  /// variables). The new row's slack enters the basis, which keeps the
  /// basis valid but forces one refactorization on the next Solve().
  /// Returns the new row's id.
  RowId AddRow(Sense sense, double rhs, std::span<const VarId> vars,
               std::span<const double> coeffs);

  /// Solves from the current basis (slack basis on first call).
  Solution Solve();

  /// Discards the warm basis; the next Solve() starts from slacks.
  void ResetBasis();

  /// Snapshots the current basis (meaningful after a Solve()).
  BasisState SaveBasis() const;
  /// Adopts a snapshot from a previous Solve() — possibly of another
  /// Simplex instance on the same Model, possibly taken before this
  /// instance grew (see BasisState). The factorization is rebuilt on
  /// the next Solve(); a numerically singular snapshot falls back to
  /// the slack basis.
  void RestoreBasis(const BasisState& state);

  const Stats& stats() const { return stats_; }

  std::int32_t num_struct_vars() const { return num_struct_; }
  std::int32_t num_rows() const { return num_rows_; }

  /// Primal value of a structural variable after a feasible Solve().
  double Value(VarId var) const { return x_[static_cast<std::size_t>(var)]; }

 private:
  enum class VStatus : std::uint8_t { kBasic, kAtLower, kAtUpper, kFreeNb };

  struct Column {
    std::vector<std::int32_t> rows;
    std::vector<double> vals;
  };

  /// Outcome of the dual-simplex warm repair.
  enum class DualOutcome {
    kPrimalFeasible,  // repaired: skip phase 1
    kInfeasible,      // a row proved infeasibility (phase 1 confirms)
    kFallback,        // could not run/finish: degrade to phase 1
  };

  // --- setup ---------------------------------------------------------
  void BuildColumns(const Model& model);
  void ResetBasisToSlacks();
  void SnapNonbasicToBounds();
  void ComputeBasicValues();
  bool Refactorize();  // false if basis singular

  // --- iteration pieces ---------------------------------------------
  // Multiplies w = Binv * A_j for column j.
  void Ftran(std::int32_t j, std::vector<double>& w);
  // y = cost_B' * Binv for the given per-variable cost vector.
  void ComputeDuals(const std::vector<double>& cost, std::vector<double>& y) const;
  double ReducedCost(std::int32_t j, const std::vector<double>& cost,
                     const std::vector<double>& y) const;

  struct Entering {
    std::int32_t var = -1;
    int direction = 0;  // +1 increase, -1 decrease
    double reduced_cost = 0.0;
  };
  Entering PriceEntering(const std::vector<double>& cost, const std::vector<double>& y,
                         bool bland) const;

  struct RatioResult {
    double step = 0.0;
    std::int32_t leaving_pos = -1;  // basis position; -1 = bound flip
    bool leaving_at_upper = false;
    bool unbounded = false;
  };
  RatioResult RatioTest(const Entering& e, const std::vector<double>& w,
                        bool phase1, bool bland) const;

  void ApplyStep(const Entering& e, const std::vector<double>& w, const RatioResult& r);

  // Runs pricing/ratio/pivot until optimal for `cost`. `phase1` enables
  // the composite-infeasibility rules. Returns the terminal status.
  SolveStatus Iterate(const std::vector<double>& cost, bool phase1);

  // Dual-simplex repair from the current (dual-feasible) basis: picks
  // the most infeasible basic variable, prices its Btran row over the
  // nonbasic candidates, and pivots by the min dual ratio until primal
  // feasible. See DESIGN.md "Incremental admission" for the rules.
  DualOutcome TryDualWarmStart();

  double TotalInfeasibility() const;
  void BuildPhase1Cost(std::vector<double>& cost) const;
  // Sum of cost_' x in minimize space (phase-2 progress + objective).
  double CurrentObjective() const;

  // Dense Gauss-Jordan rebuild of binv_ (reference path).
  bool RefactorizeDense();
  // Sparse LU rebuild of lu_ from the current basis.
  bool RefactorizeSparse();

  // --- incremental bookkeeping (options_.incremental) ----------------
  bool Fixed(std::int32_t j) const {
    return upper_[static_cast<std::size_t>(j)] - lower_[static_cast<std::size_t>(j)] <= 0.0;
  }
  /// True when the compressed pricing/residual state may be used.
  bool IncActive() const {
    return options_.incremental && !fixed_dirty_ && !pricing_dirty_;
  }
  // Rebuilds pricing_list_ / fixed_activity_ / fixed_obj_ from scratch.
  void RecomputeFixedState();
  void RebuildPricingList();
  void CompactPricingList();
  // fixed_activity_ += sign * A_v * value for struct var v.
  void AddFixedContribution(std::int32_t v, double value, double sign);

  // --- data ----------------------------------------------------------
  SimplexOptions options_;
  std::int32_t num_rows_ = 0;
  std::int32_t num_struct_ = 0;
  std::int32_t num_total_ = 0;  // structural + slack

  std::vector<Column> columns_;   // structural columns only
  std::vector<double> lower_, upper_, cost_;  // size num_total_
  std::vector<double> rhs_;                   // size num_rows_
  bool maximize_ = true;

  std::vector<VStatus> status_;       // size num_total_
  std::vector<std::int32_t> basis_;   // size num_rows_ (var per basis pos)
  std::vector<double> x_;             // size num_total_
  std::vector<double> binv_;          // dense num_rows_^2, row-major (dense path)
  BasisLu lu_;                        // sparse path
  bool basis_valid_ = false;
  /// A restored snapshot or appended row needs a fresh factorization
  /// before use.
  bool needs_refactor_ = false;
  int pivots_since_refactor_ = 0;
  /// Bumped whenever the basis is reset to slacks, so the dual repair
  /// can notice a mid-flight reset and bail out to phase 1.
  std::int64_t basis_epoch_ = 0;
  /// Snapshot of stats_.iterations at Solve() entry, so the iteration
  /// limit applies per solve rather than across warm restarts.
  std::int64_t iterations_at_solve_start_ = 0;

  // Incremental (fixed-column compression) state. Invariants while
  // options_.incremental and !fixed_dirty_:
  //  * pricing_list_ is an ascending superset of the nonfixed
  //    structural variables (fixed tombstones are skipped at use);
  //  * in_pricing_list_[v] says whether v is still in the list —
  //    unfixing a compacted-away variable forces a rebuild;
  //  * fixed_activity_[r] == sum over fixed *nonbasic* struct vars of
  //    A_{rv} * x_v, and fixed_obj_ the matching cost_'x share.
  std::vector<std::int32_t> pricing_list_;
  std::vector<std::uint8_t> in_pricing_list_;
  std::int64_t pricing_dead_ = 0;
  bool pricing_dirty_ = false;
  std::vector<double> fixed_activity_;
  double fixed_obj_ = 0.0;
  bool fixed_dirty_ = true;

  Stats stats_;
};

}  // namespace sfp::lp
