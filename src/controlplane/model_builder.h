// Builds the joint physical+logical placement integer program (§V-A).
//
// Variables (the paper's notation; eq. 10 is applied structurally by
// collapsing x to physical stages):
//   x[i][s]   in {0,1}  — physical NF of type i at physical stage s
//   y[l]      in {0,1}  — chain l offloaded (all d_jl equal, eq. 7)
//   z[l][j][k] in {0,1} — box j of chain l at *virtual* stage k
//                         (created only for i = f_jl, eq. 6, and only
//                         for k in the feasible window [j+1, K-(J-1-j)])
//   blocks[i][s] integer — memory blocks of type i at stage s
//                          (linearization of the eq. 11/24 ceiling)
//   passes[l] integer    — pipeline passes of chain l (= R_l + 1;
//                          linearization of the eq. 12/26 ceiling)
//
// Constraints: assignment (eqs. 5-7), order (eq. 8), logical->physical
// consistency (eq. 9; disaggregated per box or aggregated per (type,
// stage) for scalability), coverage (eq. 4), memory (eq. 24 or 25),
// capacity (eq. 26). Objective: eq. 1.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "controlplane/instance.h"
#include "controlplane/solution.h"
#include "lp/model.h"

namespace sfp::controlplane {

/// Model-construction options.
struct ModelOptions {
  /// Allowed passes (R + 1); the virtual pipeline has max_passes * S
  /// stages.
  int max_passes = 3;
  MemoryModel memory_model = MemoryModel::kConsolidated;
  /// Aggregate eq. 9 per (type, virtual stage) instead of per box.
  /// Aggregation shrinks the row count by ~J*L and is exact for the
  /// IP, at the cost of a weaker LP relaxation (ablation:
  /// bench/micro_lp).
  bool aggregated_consistency = true;
  /// Each installed physical NF reserves one block even before rules
  /// arrive (§V-A's reservation; off reproduces eq. 24 verbatim).
  bool reserve_block_per_physical_nf = false;
  /// Chains whose current placement must be kept (runtime update,
  /// §V-E): chain index -> 1-based virtual stages per box.
  std::map<int, std::vector<int>> pinned;
  /// Chains forced out of the switch (stripped candidates).
  std::set<int> excluded;
};

/// The built model plus variable maps for extraction.
struct PlacementModel {
  lp::Model model;
  std::vector<std::vector<lp::VarId>> x;            // I x S
  std::vector<lp::VarId> y;                         // L
  /// z[l][j] maps virtual stage k (1-based) -> VarId; -1 where the
  /// variable was pruned away by the feasible-window reduction.
  std::vector<std::vector<std::vector<lp::VarId>>> z;
  std::vector<std::vector<lp::VarId>> blocks;       // I x S (consolidated)
  std::vector<lp::VarId> passes;                    // L
  int K = 0;
  ModelOptions options;
};

/// Builds the IP for `instance`.
PlacementModel BuildPlacementModel(const PlacementInstance& instance,
                                   const ModelOptions& options = {});

/// Extracts a PlacementSolution from *integral* variable values.
PlacementSolution ExtractSolution(const PlacementInstance& instance,
                                  const PlacementModel& pm,
                                  const std::vector<double>& values);

/// Inverse of ExtractSolution: encodes a feasible placement as a full
/// variable assignment (blocks/passes set to their exact ceilings).
/// Used to hand structured-rounding incumbents back to branch & bound.
std::vector<double> SolutionToValues(const PlacementInstance& instance,
                                     const PlacementModel& pm,
                                     const PlacementSolution& solution);

/// Deterministic completion of an LP point: the physical layout is
/// x rounded at 0.5 (plus eq. 4 repair), chains are considered in
/// descending LP y-value, and each selected chain is placed earliest-
/// fit on that layout under exact memory and capacity bookkeeping.
/// Chains that do not fit are left out, so the result always verifies.
/// Used by branch & bound to close plateaus of equivalent z
/// assignments the moment x and y go integral.
PlacementSolution GreedyCompleteFromLp(const PlacementInstance& instance,
                                       const PlacementModel& pm,
                                       const std::vector<double>& lp_values);

/// Structured randomized rounding of an LP-relaxation point (§V-B) as
/// dependent rounding: the physical layout x rounds first (Bernoulli
/// with the LP probabilities, plus eq. 4/pinned repairs); then chains
/// round in with probability y in random order, each box sampling its
/// stage from its z distribution restricted to order-consistent (eq. 8),
/// layout-consistent (eq. 9), memory-feasible (eq. 24/25) stages, with
/// a capacity (eq. 26) admission check per chain. Chains that cannot
/// fit the draw stay in software. Chains in `stripped` are left out.
/// The result is feasible by construction; the caller still verifies.
std::optional<PlacementSolution> StructuredRound(const PlacementInstance& instance,
                                                 const PlacementModel& pm,
                                                 const std::vector<double>& lp_values,
                                                 Rng& rng,
                                                 const std::set<int>& stripped = {});

}  // namespace sfp::controlplane
