#include "controlplane/greedy_solver.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/units.h"

namespace sfp::controlplane {
namespace {

/// Mutable resource ledger used while placing chains one by one.
class Ledger {
 public:
  Ledger(const PlacementInstance& instance, MemoryModel model)
      : instance_(instance),
        model_(model),
        installed_(static_cast<std::size_t>(instance.num_types),
                   std::vector<bool>(static_cast<std::size_t>(instance.sw.stages), false)),
        entries_(static_cast<std::size_t>(instance.num_types),
                 std::vector<std::int64_t>(static_cast<std::size_t>(instance.sw.stages), 0)),
        logical_blocks_(static_cast<std::size_t>(instance.sw.stages), 0) {}

  bool IsInstalled(int type, int s) const {
    return installed_[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)];
  }
  void Install(int type, int s) {
    installed_[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)] = true;
  }

  /// Blocks currently used at stage s under the ledger's memory model.
  int StageBlocks(int s) const {
    if (model_ == MemoryModel::kPerLogicalNf) {
      return logical_blocks_[static_cast<std::size_t>(s)];
    }
    int blocks = 0;
    for (int i = 0; i < instance_.num_types; ++i) {
      const std::int64_t e = entries_[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
      if (e > 0) blocks += static_cast<int>(CeilDiv(e, instance_.sw.entries_per_block));
    }
    return blocks;
  }

  /// Whether a box of `type` with `mem` memory units fits at stage s.
  bool Fits(int type, int s, std::int64_t mem) const {
    if (model_ == MemoryModel::kPerLogicalNf) {
      const int extra = static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance_.sw.entries_per_block)));
      return logical_blocks_[static_cast<std::size_t>(s)] + extra <=
             instance_.sw.blocks_per_stage;
    }
    const std::int64_t e = entries_[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)];
    const int old_blocks =
        e > 0 ? static_cast<int>(CeilDiv(e, instance_.sw.entries_per_block)) : 0;
    const int new_blocks = static_cast<int>(CeilDiv(e + mem, instance_.sw.entries_per_block));
    return StageBlocks(s) - old_blocks + new_blocks <= instance_.sw.blocks_per_stage;
  }

  void Charge(int type, int s, std::int64_t mem) {
    entries_[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)] += mem;
    if (model_ == MemoryModel::kPerLogicalNf) {
      logical_blocks_[static_cast<std::size_t>(s)] += static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance_.sw.entries_per_block)));
    }
  }

  void Refund(int type, int s, std::int64_t mem) {
    entries_[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)] -= mem;
    SFP_CHECK_GE(entries_[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)], 0);
    if (model_ == MemoryModel::kPerLogicalNf) {
      logical_blocks_[static_cast<std::size_t>(s)] -= static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance_.sw.entries_per_block)));
    }
  }

  const std::vector<std::vector<bool>>& installed() const { return installed_; }

 private:
  const PlacementInstance& instance_;
  MemoryModel model_;
  std::vector<std::vector<bool>> installed_;
  std::vector<std::vector<std::int64_t>> entries_;
  std::vector<int> logical_blocks_;  // per-logical-NF mode only
};

}  // namespace

PlacementSolution PlaceInOrder(const PlacementInstance& instance,
                               const std::vector<int>& order, const GreedyOptions& options) {
  const int S = instance.sw.stages;
  const int K = options.max_passes * S;
  Ledger ledger(instance, options.memory_model);
  double backplane_used = 0.0;

  PlacementSolution solution;
  solution.chains.resize(instance.sfcs.size());

  for (int l : order) {
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];

    // Try_placement(): walk boxes across the virtual pipeline.
    struct Step {
      int k;
      bool newly_installed;
    };
    std::vector<Step> steps;
    bool failed = false;
    int prev = 0;
    for (const NfBox& box : sfc.boxes) {
      int chosen = -1;
      bool installed_new = false;
      // First preference: an existing physical NF of the type.
      for (int k = prev + 1; k <= K; ++k) {
        const int s = (k - 1) % S;
        if (!ledger.IsInstalled(box.type, s)) continue;
        if (!ledger.Fits(box.type, s, box.MemoryUnits(instance.sw.rule_width))) continue;
        chosen = k;
        break;
      }
      // Fallback: install a new physical NF at the nearest stage that
      // still has memory for the box.
      if (chosen < 0) {
        for (int k = prev + 1; k <= K; ++k) {
          const int s = (k - 1) % S;
          if (ledger.IsInstalled(box.type, s)) continue;
          if (!ledger.Fits(box.type, s, box.MemoryUnits(instance.sw.rule_width))) continue;
          chosen = k;
          installed_new = true;
          break;
        }
      }
      if (chosen < 0) {
        failed = true;
        break;
      }
      const int s = (chosen - 1) % S;
      if (installed_new) ledger.Install(box.type, s);
      ledger.Charge(box.type, s, box.MemoryUnits(instance.sw.rule_width));
      steps.push_back({chosen, installed_new});
      prev = chosen;
    }

    // Capacity check (eq. 26): admission must fit the backplane.
    const int passes = failed ? 0 : (steps.back().k + S - 1) / S;
    if (!failed && backplane_used + passes * sfc.bandwidth_gbps >
                       instance.sw.capacity_gbps + 1e-9) {
      failed = true;
    }

    if (failed) {
      // Roll back this chain's charges (Resource_recompute on failure).
      for (std::size_t j = 0; j < steps.size(); ++j) {
        const NfBox& box = sfc.boxes[j];
        ledger.Refund(box.type, (steps[j].k - 1) % S, box.MemoryUnits(instance.sw.rule_width));
        // Note: freshly installed physical NFs stay installed — an
        // empty table costs nothing under eq. 24 and may serve later
        // chains, mirroring the incremental behaviour of Algorithm 2.
      }
      continue;
    }

    backplane_used += passes * sfc.bandwidth_gbps;
    ChainPlacement& chain = solution.chains[static_cast<std::size_t>(l)];
    chain.placed = true;
    for (const Step& step : steps) chain.virtual_stages.push_back(step.k);
  }

  solution.physical = ledger.installed();
  // eq. 4: make sure every type exists somewhere (free under eq. 24;
  // choose the emptiest stage).
  for (int i = 0; i < instance.num_types; ++i) {
    bool any = false;
    for (int s = 0; s < S; ++s) any |= solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
    if (any) continue;
    int best_s = 0;
    int best_blocks = ledger.StageBlocks(0);
    for (int s = 1; s < S; ++s) {
      const int blocks = ledger.StageBlocks(s);
      if (blocks < best_blocks) {
        best_blocks = blocks;
        best_s = s;
      }
    }
    solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(best_s)] = true;
  }

  return solution;
}

GreedyReport SolveGreedy(const PlacementInstance& instance, const GreedyOptions& options) {
  instance.CheckValid();
  Stopwatch watch;

  // Order_SFCs(): eq. 13 metric, descending.
  std::vector<int> order(static_cast<std::size_t>(instance.NumSfcs()));
  std::iota(order.begin(), order.end(), 0);
  if (options.sort_by_metric) {
    std::stable_sort(order.begin(), order.end(), [&instance](int a, int b) {
      return instance.sfcs[static_cast<std::size_t>(a)].GreedyMetric() >
             instance.sfcs[static_cast<std::size_t>(b)].GreedyMetric();
    });
  }

  GreedyReport report;
  report.solution = PlaceInOrder(instance, order, options);
  report.objective = report.solution.ObjectiveWeighted(instance);
  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace sfp::controlplane
