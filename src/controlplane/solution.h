// Placement solution and its derived metrics.
#pragma once

#include <vector>

#include "controlplane/instance.h"

namespace sfp::controlplane {

/// Placement of one chain: either unplaced, or one 1-based *virtual*
/// stage per box, strictly increasing (the paper's g_jl; virtual stage
/// k maps to physical stage (k-1) mod S and pass (k-1) / S).
struct ChainPlacement {
  bool placed = false;
  std::vector<int> virtual_stages;  // size J_l when placed

  /// Passes used (R_l + 1); 0 when unplaced.
  int Passes(int num_physical_stages) const {
    if (!placed || virtual_stages.empty()) return 0;
    return (virtual_stages.back() + num_physical_stages - 1) / num_physical_stages;
  }
};

/// A full control-plane solution.
struct PlacementSolution {
  /// physical[i][s]: NF type i installed at physical stage s.
  std::vector<std::vector<bool>> physical;
  /// One entry per candidate SFC.
  std::vector<ChainPlacement> chains;

  /// Sum of T_l over placed chains (tenant traffic offloaded).
  double OffloadedGbps(const PlacementInstance& instance) const;

  /// Backplane usage: sum over placed chains of (R_l + 1) * T_l — the
  /// quantity bounded by C and the "throughput" the evaluation figures
  /// report (it saturates at the 400 Gbps backplane).
  double BackplaneGbps(const PlacementInstance& instance) const;

  /// The paper's objective (eq. 1): sum of T_l * J_l over placed chains.
  double ObjectiveWeighted(const PlacementInstance& instance) const;

  /// Blocks used per physical stage under the given memory model,
  /// including one reserved block per installed physical NF with no
  /// rules... (exact accounting: max(entries-derived blocks, installs)).
  std::vector<int> BlocksPerStage(const PlacementInstance& instance,
                                  MemoryModel model) const;

  /// Total installed rule entries per physical stage.
  std::vector<std::int64_t> EntriesPerStage(const PlacementInstance& instance) const;

  /// Average blocks used per stage (Fig. 6/7 "block utilization",
  /// upper bound B).
  double AvgBlockUtilization(const PlacementInstance& instance, MemoryModel model) const;

  /// Average entries used per stage in units of blocks-equivalent
  /// (Fig. 6/7 "entry utilization": entries / E per stage).
  double AvgEntryUtilization(const PlacementInstance& instance) const;

  /// Number of placed chains.
  int NumPlaced() const;
};

}  // namespace sfp::controlplane
