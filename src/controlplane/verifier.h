// Exact feasibility check of a placement solution against the paper's
// constraints — with true (un-linearized) ceilings. Shared by the
// rounding loop of SFP-Appro, the greedy solver's self-checks, and the
// test suite, so every algorithm is held to the same ground truth.
#pragma once

#include <string>

#include "controlplane/instance.h"
#include "controlplane/solution.h"

namespace sfp::controlplane {

/// Feasibility-check options.
struct VerifyOptions {
  MemoryModel memory_model = MemoryModel::kConsolidated;
  /// Maximum passes allowed ((R+1); K = max_passes * S virtual stages).
  int max_passes = 3;
  /// Require every NF type to be installed somewhere (eq. 4/17). The
  /// greedy baseline installs types on demand, so it checks with this
  /// off.
  bool require_all_types_installed = true;
};

/// Verification verdict; `ok` plus a human-readable reason on failure.
struct VerifyResult {
  bool ok = true;
  std::string violation;
};

/// Checks every constraint of §V-A:
///  * shapes: physical is I x S; chains has one entry per SFC,
///  * order (eq. 8): placed chains use strictly increasing virtual
///    stages in [1, max_passes * S],
///  * consistency (eq. 9/10): every placed box sits on a physical NF of
///    its type at the corresponding physical stage,
///  * physical coverage (eq. 4) when enabled,
///  * memory (eq. 24 or 25): per-stage blocks <= B,
///  * capacity (eq. 12/26): sum over placed chains of passes * T <= C.
VerifyResult Verify(const PlacementInstance& instance, const PlacementSolution& solution,
                    const VerifyOptions& options = {});

}  // namespace sfp::controlplane
