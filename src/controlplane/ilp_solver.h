// SFP-IP: exact joint placement via branch & bound (§V-A).
#pragma once

#include <string>
#include <vector>

#include "common/metrics.h"
#include "controlplane/model_builder.h"
#include "controlplane/verifier.h"
#include "lp/mip.h"

namespace sfp::controlplane {

/// Options for the exact solver.
struct IlpOptions {
  ModelOptions model;
  /// Wall-clock limit (drives the Fig. 9 early-termination study).
  double time_limit_seconds = lp::kInfinity;
  /// Relative optimality gap at which branch & bound stops proving
  /// (0 = exact optimum). Benches use ~1e-4 to dodge plateau tails.
  double relative_gap = 0.0;
  /// Let branch & bound call the structured-rounding heuristic for
  /// early incumbents. Fig. 9 turns this off to expose the raw solver
  /// warm-up behaviour the paper measured with Gurobi.
  bool use_rounding_heuristic = true;
  int heuristic_period = 25;
  /// Seed branch & bound with a batch of root-relaxation roundings so
  /// the exact solver starts from an SFP-Appro-quality incumbent.
  /// Fig. 9's warm-up series turns this off.
  bool root_burst = true;
  std::uint64_t seed = 1;
  /// Serial fixed-order tree search (reproducible traces). Turn off to
  /// search with `num_workers` parallel workers (see lp::MipOptions).
  bool deterministic = true;
  /// Parallel workers when `deterministic` is off (0 = auto).
  int num_workers = 0;
  /// LP-engine knobs, e.g. `simplex.use_dense_inverse` to benchmark the
  /// legacy dense kernels against the sparse LU default.
  lp::SimplexOptions simplex;
};

/// Common report shape across the placement solvers.
struct SolverReport {
  PlacementSolution solution;
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  /// eq. 1 objective of `solution` (0 when none found).
  double objective = 0.0;
  double seconds = 0.0;
  /// Dual bound from B&B (== objective at optimality).
  double best_bound = 0.0;
  std::int64_t nodes = 0;
  /// Nodes whose LP hit the iteration cap (bounds folded into
  /// `best_bound`; see lp::MipResult::nodes_dropped).
  std::int64_t nodes_dropped = 0;
  /// Simplex work across the whole tree (all workers).
  std::int64_t pivots = 0;
  std::int64_t refactorizations = 0;
  std::int64_t ftran_nnz = 0;
  /// Incumbent improvements over time (Fig. 9's series).
  std::vector<lp::IncumbentEvent> incumbent_trace;
  /// (incumbent, dual bound) at each improvement — the gap-over-time
  /// trace exported through common::metrics.
  std::vector<lp::GapEvent> gap_trace;
};

/// Solves the placement IP exactly (up to the time limit).
SolverReport SolveIlp(const PlacementInstance& instance, const IlpOptions& options = {});

/// Publishes a report's solver counters into `registry` under
/// `prefix` ("solver" → solver.nodes, solver.pivots,
/// solver.refactorizations, solver.ftran_nnz, solver.nodes_dropped,
/// solver.incumbents; see docs/METRICS.md). Values are Set, not
/// incremented, so re-exporting overwrites.
void ExportSolverMetrics(const SolverReport& report, common::metrics::Registry& registry,
                         const std::string& prefix = "solver");

}  // namespace sfp::controlplane
