// SFP-IP: exact joint placement via branch & bound (§V-A).
#pragma once

#include <vector>

#include "controlplane/model_builder.h"
#include "controlplane/verifier.h"
#include "lp/mip.h"

namespace sfp::controlplane {

/// Options for the exact solver.
struct IlpOptions {
  ModelOptions model;
  /// Wall-clock limit (drives the Fig. 9 early-termination study).
  double time_limit_seconds = lp::kInfinity;
  /// Relative optimality gap at which branch & bound stops proving
  /// (0 = exact optimum). Benches use ~1e-4 to dodge plateau tails.
  double relative_gap = 0.0;
  /// Let branch & bound call the structured-rounding heuristic for
  /// early incumbents. Fig. 9 turns this off to expose the raw solver
  /// warm-up behaviour the paper measured with Gurobi.
  bool use_rounding_heuristic = true;
  int heuristic_period = 25;
  /// Seed branch & bound with a batch of root-relaxation roundings so
  /// the exact solver starts from an SFP-Appro-quality incumbent.
  /// Fig. 9's warm-up series turns this off.
  bool root_burst = true;
  std::uint64_t seed = 1;
};

/// Common report shape across the placement solvers.
struct SolverReport {
  PlacementSolution solution;
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  /// eq. 1 objective of `solution` (0 when none found).
  double objective = 0.0;
  double seconds = 0.0;
  /// Dual bound from B&B (== objective at optimality).
  double best_bound = 0.0;
  std::int64_t nodes = 0;
  /// Incumbent improvements over time (Fig. 9's series).
  std::vector<lp::IncumbentEvent> incumbent_trace;
};

/// Solves the placement IP exactly (up to the time limit).
SolverReport SolveIlp(const PlacementInstance& instance, const IlpOptions& options = {});

}  // namespace sfp::controlplane
