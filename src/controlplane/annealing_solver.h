// Simulated-annealing placement (design-space extension).
//
// Neither the paper's IP (optimal but exponential) nor its greedy
// (fast but myopic) explores intermediate cost/quality points; this
// solver anneals over the *offer order* fed to the earliest-fit
// placement kernel (PlaceInOrder): a state is a permutation of chain
// indices, a move swaps two positions, and the energy is the negated
// eq. 1 objective. It serves as an additional baseline in the ablation
// benches and as a robustness check on the greedy metric (the annealer
// should never end below metric-ordered greedy, since it starts there).
#pragma once

#include "common/rng.h"
#include "controlplane/greedy_solver.h"

namespace sfp::controlplane {

struct AnnealingOptions {
  GreedyOptions placement;
  /// Total proposed moves.
  int iterations = 3000;
  /// Initial acceptance temperature (in objective units).
  double initial_temperature = 30.0;
  /// Geometric cooling factor per move.
  double cooling = 0.999;
  std::uint64_t seed = 1;
};

struct AnnealingReport {
  PlacementSolution solution;
  double objective = 0.0;  // eq. 1
  double seconds = 0.0;
  int accepted_moves = 0;
  int improving_moves = 0;
};

/// Runs the annealer, starting from the eq. 13 metric order.
AnnealingReport SolveAnnealing(const PlacementInstance& instance,
                               const AnnealingOptions& options = {});

}  // namespace sfp::controlplane
