// Incremental online-admission LP (§V-E arrivals/departures at scale).
//
// Models the running admission ledger as one long-lived LP:
//
//   maximize  sum_t  T_t * x_t
//   s.t.      sum_t  entries_{t,s} * x_t <= stage_capacity[s]   (per stage)
//             sum_t  passes_t * T_t * x_t <= backplane_gbps     (eq. 26)
//             x_t in [0, 1]
//
// Committed tenants are *fixed* at x = 1 and departed tenants at x = 0,
// so at any moment exactly one variable — the arriving candidate — is
// free in [0, 1]. The candidate is admitted iff the optimum drives it to
// 1 (within `admit_tol`): since every coefficient is nonnegative and the
// candidate's bandwidth is positive, its optimal value is unique
// (min over binding rows of remaining-capacity / usage, capped at 1),
// which is what makes the warm and cold paths provably agree.
//
// The point of this class is *how* each arrival is solved. The Model and
// Simplex persist across the tenant stream: an arrival appends one
// column (Model::AddRowCoefficient + Simplex::AddColumn — the sparse-LU
// basis factors survive untouched), a departure clamps the column to
// [0, 0], and every decision re-solves via the dual-simplex warm restart
// from the previous optimal basis (SimplexOptions::warm_dual +
// incremental fixed-column compression), so the steady-state admit cost
// is proportional to the perturbation, not to the million committed
// columns. `ColdReference` rebuilds the same LP from scratch and solves
// it from slacks — the differential oracle the churn suites replay
// against (the same pattern as `LookupReference`/`use_dense_inverse`).
//
// Dead (departed) columns are compacted away: once they outnumber the
// live ones the whole LP is rebuilt from the live set, bounding memory
// under perpetual churn. Not thread-safe; callers serialize (SfpSystem
// holds its control mutex across admission).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sfp::controlplane {

/// Static resources the admission LP allocates.
struct AdmissionLpOptions {
  /// Per-stage entry capacity; size() defines the number of stage rows.
  std::vector<double> stage_capacity;
  /// eq. 26 backplane capacity (Gbps). <= 0 disables the row.
  double backplane_gbps = 0.0;
  /// Warm dual re-solves (false = every decision cold-starts from
  /// slacks; the A/B switch for `sfpctl churn --warm=off`).
  bool warm = true;
  /// x_cand >= 1 - admit_tol counts as admitted.
  double admit_tol = 1e-6;
  /// Rebuild the LP from the live set once dead columns exceed
  /// max(live, rebuild_slack) — bounds memory under perpetual churn.
  std::int64_t rebuild_slack = 1024;
};

/// Per-tenant resource usage, the candidate column of the LP.
struct TenantFootprint {
  double bandwidth_gbps = 0.0;            // T_t
  int passes = 1;                         // R_t + 1
  /// (stage, entries) pairs — table entries the folded chain consumes
  /// per stage. Stages outside [0, stage_capacity.size()) are invalid.
  std::vector<std::pair<int, double>> stage_entries;

  double BackplaneCharge() const { return passes * bandwidth_gbps; }
};

/// Outcome of one admission decision.
struct AdmissionDecision {
  bool admitted = false;
  /// Admitted bandwidth at the optimum (model direction: maximize).
  double objective = 0.0;
  /// The candidate's optimal value in [0, 1].
  double candidate_value = 0.0;
  /// The dual warm path carried this solve (no phase-1 fallback).
  bool warm_hit = false;
};

class IncrementalAdmissionLp {
 public:
  /// Key type decoupled from dataplane::TenantId (uint16) so the churn
  /// bench can stream millions of logical tenants through one LP.
  using TenantKey = std::uint32_t;

  struct Counters {
    std::int64_t solves = 0;           // TryAdmit decisions
    std::int64_t admitted = 0;
    std::int64_t rejected = 0;
    std::int64_t warm_attempts = 0;    // solves that tried the dual path
    std::int64_t warm_successes = 0;   // ... that it carried end to end
    std::int64_t dual_iterations = 0;  // dual repair pivots
    std::int64_t total_iterations = 0; // all simplex pivots (incl. cold)
    std::int64_t phase1_iterations = 0;
    std::int64_t rebuilds = 0;         // dead-column compactions
  };

  explicit IncrementalAdmissionLp(AdmissionLpOptions options);

  /// Decides the candidate's admission against the committed set. On
  /// admit the tenant is committed (fixed at 1); on reject its column
  /// is clamped to 0 and may be re-offered later with any footprint
  /// (re-offers append a fresh column). `tenant` must not be currently
  /// committed.
  AdmissionDecision TryAdmit(TenantKey tenant, const TenantFootprint& footprint);

  /// Commits a tenant without an admission decision (fixed at 1) —
  /// used to seed the LP from an admission ledger that predates it.
  void Commit(TenantKey tenant, const TenantFootprint& footprint);

  /// Releases a committed tenant's resources. Returns false if the
  /// tenant is not committed.
  bool Remove(TenantKey tenant);

  bool Contains(TenantKey tenant) const { return columns_.contains(tenant); }
  std::size_t num_admitted() const { return columns_.size(); }

  /// Differential oracle: rebuilds the LP of the current committed set
  /// plus this candidate from scratch and solves it cold (legacy
  /// simplex configuration, slack basis). Does not mutate state.
  AdmissionDecision ColdReference(TenantKey tenant,
                                  const TenantFootprint& footprint) const;

  const Counters& counters() const { return counters_; }

  /// Exports solver.warm.* (docs/METRICS.md).
  void ExportMetrics(common::metrics::Registry& registry) const;

 private:
  struct Committed {
    lp::VarId var;
    TenantFootprint footprint;
  };

  /// Appends the footprint as a column to `model` (shared by the live
  /// LP and the cold oracle). Returns the new var.
  static lp::VarId AppendColumn(lp::Model& model, const TenantFootprint& footprint,
                                double lower, double upper, int num_stage_rows,
                                lp::RowId backplane_row);
  lp::VarId AppendLiveColumn(const TenantFootprint& footprint, double lower,
                             double upper);
  AdmissionDecision DecideFrom(lp::Simplex& simplex, lp::VarId candidate,
                               const lp::Solution& solution) const;
  void RebuildFromLive();

  AdmissionLpOptions options_;
  lp::Model model_;
  std::optional<lp::Simplex> simplex_;
  lp::RowId backplane_row_ = -1;
  std::unordered_map<TenantKey, Committed> columns_;
  std::int64_t dead_columns_ = 0;
  Counters counters_;
};

}  // namespace sfp::controlplane
