#include "controlplane/solution.h"

#include <algorithm>

#include "common/units.h"

namespace sfp::controlplane {

double PlacementSolution::OffloadedGbps(const PlacementInstance& instance) const {
  double total = 0.0;
  for (std::size_t l = 0; l < chains.size(); ++l) {
    if (chains[l].placed) total += instance.sfcs[l].bandwidth_gbps;
  }
  return total;
}

double PlacementSolution::BackplaneGbps(const PlacementInstance& instance) const {
  double total = 0.0;
  for (std::size_t l = 0; l < chains.size(); ++l) {
    if (!chains[l].placed) continue;
    total += chains[l].Passes(instance.sw.stages) * instance.sfcs[l].bandwidth_gbps;
  }
  return total;
}

double PlacementSolution::ObjectiveWeighted(const PlacementInstance& instance) const {
  double total = 0.0;
  for (std::size_t l = 0; l < chains.size(); ++l) {
    if (chains[l].placed) total += instance.sfcs[l].ObjectiveWeight();
  }
  return total;
}

std::vector<std::int64_t> PlacementSolution::EntriesPerStage(
    const PlacementInstance& instance) const {
  std::vector<std::int64_t> entries(static_cast<std::size_t>(instance.sw.stages), 0);
  for (std::size_t l = 0; l < chains.size(); ++l) {
    if (!chains[l].placed) continue;
    const auto& sfc = instance.sfcs[l];
    for (std::size_t j = 0; j < sfc.boxes.size(); ++j) {
      const int s = (chains[l].virtual_stages[j] - 1) % instance.sw.stages;
      entries[static_cast<std::size_t>(s)] +=
          sfc.boxes[j].MemoryUnits(instance.sw.rule_width);
    }
  }
  return entries;
}

std::vector<int> PlacementSolution::BlocksPerStage(const PlacementInstance& instance,
                                                   MemoryModel model) const {
  const int S = instance.sw.stages;
  const std::size_t I = physical.size();
  std::vector<int> blocks(static_cast<std::size_t>(S), 0);

  if (model == MemoryModel::kConsolidated) {
    // eq. 24: per (type, stage), all logical rules share blocks.
    std::vector<std::vector<std::int64_t>> entries(
        I, std::vector<std::int64_t>(static_cast<std::size_t>(S), 0));
    for (std::size_t l = 0; l < chains.size(); ++l) {
      if (!chains[l].placed) continue;
      const auto& sfc = instance.sfcs[l];
      for (std::size_t j = 0; j < sfc.boxes.size(); ++j) {
        const int s = (chains[l].virtual_stages[j] - 1) % S;
        entries[static_cast<std::size_t>(sfc.boxes[j].type)][static_cast<std::size_t>(s)] +=
            sfc.boxes[j].MemoryUnits(instance.sw.rule_width);
      }
    }
    for (std::size_t i = 0; i < I; ++i) {
      for (int s = 0; s < S; ++s) {
        const std::int64_t e = entries[i][static_cast<std::size_t>(s)];
        if (e > 0) {
          blocks[static_cast<std::size_t>(s)] += static_cast<int>(
              CeilDiv(e, instance.sw.entries_per_block));
        }
      }
    }
  } else {
    // eq. 25: every placed logical NF rounds up to whole blocks.
    for (std::size_t l = 0; l < chains.size(); ++l) {
      if (!chains[l].placed) continue;
      const auto& sfc = instance.sfcs[l];
      for (std::size_t j = 0; j < sfc.boxes.size(); ++j) {
        const int s = (chains[l].virtual_stages[j] - 1) % S;
        const std::int64_t e = sfc.boxes[j].MemoryUnits(instance.sw.rule_width);
        blocks[static_cast<std::size_t>(s)] += static_cast<int>(
            std::max<std::int64_t>(CeilDiv(e, instance.sw.entries_per_block), e > 0 ? 1 : 0));
      }
    }
  }
  return blocks;
}

double PlacementSolution::AvgBlockUtilization(const PlacementInstance& instance,
                                              MemoryModel model) const {
  const auto blocks = BlocksPerStage(instance, model);
  double total = 0.0;
  for (int b : blocks) total += b;
  return blocks.empty() ? 0.0 : total / static_cast<double>(blocks.size());
}

double PlacementSolution::AvgEntryUtilization(const PlacementInstance& instance) const {
  const auto entries = EntriesPerStage(instance);
  double total = 0.0;
  for (auto e : entries) {
    total += static_cast<double>(e) / instance.sw.entries_per_block;
  }
  return entries.empty() ? 0.0 : total / static_cast<double>(entries.size());
}

int PlacementSolution::NumPlaced() const {
  return static_cast<int>(
      std::count_if(chains.begin(), chains.end(),
                    [](const ChainPlacement& c) { return c.placed; }));
}

}  // namespace sfp::controlplane
