#include "controlplane/ilp_solver.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sfp::controlplane {

SolverReport SolveIlp(const PlacementInstance& instance, const IlpOptions& options) {
  PlacementModel pm = BuildPlacementModel(instance, options.model);

  lp::MipOptions mip_options;
  mip_options.time_limit_seconds = options.time_limit_seconds;
  mip_options.relative_gap = options.relative_gap;
  mip_options.deterministic = options.deterministic;
  mip_options.num_workers = options.num_workers;
  mip_options.simplex = options.simplex;
  mip_options.heuristic_period = options.use_rounding_heuristic ? options.heuristic_period : 0;
  if (options.use_rounding_heuristic) {
    // Once the physical layout (x) and chain selection (y) are
    // integral, a rounding attempt is cheap and usually closes the
    // node's plateau of equivalent z assignments.
    mip_options.heuristic_priority_threshold = 50;
  }

  lp::MipSolver solver(pm.model, mip_options);
  Rng rng(options.seed);
  VerifyOptions verify_options;
  verify_options.memory_model = options.model.memory_model;
  verify_options.max_passes = options.model.max_passes;

  if (options.use_rounding_heuristic) {
    solver.SetHeuristic([&instance, &pm, &rng, verify_options](
                            const std::vector<double>& lp_values,
                            std::vector<double>& candidate) {
      // Try the deterministic earliest-fit completion plus a few
      // randomized roundings; hand branch & bound the best verified
      // candidate.
      PlacementSolution best;
      double best_objective = -1.0;
      PlacementSolution greedy = GreedyCompleteFromLp(instance, pm, lp_values);
      if (Verify(instance, greedy, verify_options).ok) {
        best_objective = greedy.ObjectiveWeighted(instance);
        best = std::move(greedy);
      }
      for (int draw = 0; draw < 4; ++draw) {
        auto rounded = StructuredRound(instance, pm, lp_values, rng);
        if (!rounded || !Verify(instance, *rounded, verify_options).ok) continue;
        const double objective = rounded->ObjectiveWeighted(instance);
        if (objective > best_objective) {
          best_objective = objective;
          best = std::move(*rounded);
        }
      }
      if (best_objective < 0.0) return false;
      candidate = SolutionToValues(instance, pm, best);
      return true;
    });
  }

  if (options.use_rounding_heuristic && options.root_burst) {
    // Root burst: solve the root relaxation once and spend a batch of
    // rounding draws on it, seeding branch & bound with an incumbent of
    // roughly SFP-Appro quality so the exact solver never trails the
    // approximation it is supposed to dominate.
    lp::Simplex root(pm.model, options.simplex);
    const lp::Solution root_lp = root.Solve();
    if (root_lp.status == lp::SolveStatus::kOptimal) {
      PlacementSolution best;
      double best_objective = -1.0;
      PlacementSolution greedy = GreedyCompleteFromLp(instance, pm, root_lp.values);
      if (Verify(instance, greedy, verify_options).ok) {
        best_objective = greedy.ObjectiveWeighted(instance);
        best = std::move(greedy);
      }
      for (int draw = 0; draw < 32; ++draw) {
        auto rounded = StructuredRound(instance, pm, root_lp.values, rng);
        if (!rounded || !Verify(instance, *rounded, verify_options).ok) continue;
        const double objective = rounded->ObjectiveWeighted(instance);
        if (objective > best_objective) {
          best_objective = objective;
          best = std::move(*rounded);
        }
      }
      if (best_objective >= 0.0) {
        solver.SetInitialIncumbent(SolutionToValues(instance, pm, best));
      }
    }
  }

  const lp::MipResult result = solver.Solve();

  SolverReport report;
  report.status = result.solution.status;
  report.seconds = result.seconds;
  report.best_bound = result.best_bound;
  report.nodes = result.nodes_explored;
  report.nodes_dropped = result.nodes_dropped;
  report.pivots = result.simplex_pivots;
  report.refactorizations = result.refactorizations;
  report.ftran_nnz = result.ftran_nnz;
  report.incumbent_trace = result.incumbent_trace;
  report.gap_trace = result.gap_trace;
  if (result.solution.feasible()) {
    report.solution = ExtractSolution(instance, pm, result.solution.values);
    report.objective = report.solution.ObjectiveWeighted(instance);
    // The extracted solution must satisfy the exact (un-linearized)
    // constraints; the linearization is designed to be tight.
    const auto verdict = Verify(instance, report.solution, verify_options);
    if (!verdict.ok) {
      SFP_LOG_ERROR << "ILP solution failed exact verification: " << verdict.violation;
    }
  } else {
    // Shape the empty solution so downstream metric helpers work.
    report.solution.physical.assign(static_cast<std::size_t>(instance.num_types),
                                    std::vector<bool>(static_cast<std::size_t>(instance.sw.stages),
                                                      false));
    report.solution.chains.resize(instance.sfcs.size());
  }
  return report;
}

void ExportSolverMetrics(const SolverReport& report, common::metrics::Registry& registry,
                         const std::string& prefix) {
  auto set = [&registry, &prefix](const char* key, std::int64_t value) {
    registry.GetCounter(prefix + key).Set(
        value > 0 ? static_cast<std::uint64_t>(value) : 0);
  };
  set(".nodes", report.nodes);
  set(".nodes_dropped", report.nodes_dropped);
  set(".pivots", report.pivots);
  set(".refactorizations", report.refactorizations);
  set(".ftran_nnz", report.ftran_nnz);
  set(".incumbents", static_cast<std::int64_t>(report.incumbent_trace.size()));
  // Gap-over-time: the relative gap (%) at each incumbent improvement.
  // The histogram's count/min/max summarize how the gap closed.
  auto& gap = registry.GetHistogram(prefix + ".gap_pct",
                                    {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0});
  for (const lp::GapEvent& event : report.gap_trace) {
    if (!std::isfinite(event.bound) || !std::isfinite(event.objective)) continue;
    const double denom = std::max(1e-9, std::abs(event.objective));
    gap.Observe(100.0 * std::abs(event.bound - event.objective) / denom);
  }
}

}  // namespace sfp::controlplane
