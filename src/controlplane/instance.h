// Abstract placement-problem types of the SFP control plane (§V).
//
// The control plane reasons about *abstract* NF types (indices 0..I-1,
// the paper's i in [1, I]) so the optimizer scales to the evaluation's
// 10 synthetic types; mapping abstract types onto the concrete NF
// library happens at materialization time (control_plane bridge).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sfp::controlplane {

/// One function box of a chain: its type f_jl and rule count F_jl.
/// `state_entries` implements the §VII "NF States" extension: register
/// state lives in the same stage SRAM as the match-action entries and
/// is charged to the same blocks (0 for stateless NFs).
struct NfBox {
  int type = 0;
  std::int64_t rules = 0;
  std::int64_t state_entries = 0;

  /// Memory footprint in entry units: rules x rule width + state.
  std::int64_t MemoryUnits(int rule_width) const {
    return rules * rule_width + state_entries;
  }
};

/// One candidate SFC: ordered boxes plus bandwidth demand T_l.
struct SfcSpec {
  std::vector<NfBox> boxes;
  double bandwidth_gbps = 0.0;

  int Length() const { return static_cast<int>(boxes.size()); }

  /// The greedy ordering metric of eq. 13: T_l / sum_j (J_l * F_jl).
  double GreedyMetric() const {
    double denom = 0.0;
    for (const auto& box : boxes) {
      denom += static_cast<double>(Length()) * static_cast<double>(box.rules);
    }
    return denom > 0.0 ? bandwidth_gbps / denom : 0.0;
  }

  /// Objective contribution when offloaded: T_l * J_l (eq. 1).
  double ObjectiveWeight() const { return bandwidth_gbps * Length(); }
};

/// Switch resource constants (Table I).
struct SwitchResources {
  int stages = 8;              // S
  int blocks_per_stage = 20;   // B
  int entries_per_block = 1000;  // E (in rule entries; b is folded in)
  int rule_width = 1;          // b — multiplier on F_jl in memory terms
  double capacity_gbps = 400;  // C
};

/// A placement problem: the switch, the NF type universe, and the
/// candidate SFCs.
struct PlacementInstance {
  SwitchResources sw;
  int num_types = 10;  // I
  std::vector<SfcSpec> sfcs;

  int NumSfcs() const { return static_cast<int>(sfcs.size()); }

  /// Validates internal consistency (types in range, positive sizes).
  void CheckValid() const {
    SFP_CHECK_GT(num_types, 0);
    SFP_CHECK_GT(sw.stages, 0);
    SFP_CHECK_GT(sw.blocks_per_stage, 0);
    SFP_CHECK_GT(sw.entries_per_block, 0);
    for (const auto& sfc : sfcs) {
      SFP_CHECK(!sfc.boxes.empty());
      SFP_CHECK_GE(sfc.bandwidth_gbps, 0.0);
      for (const auto& box : sfc.boxes) {
        SFP_CHECK_GE(box.type, 0);
        SFP_CHECK_LT(box.type, num_types);
        SFP_CHECK_GE(box.rules, 0);
      }
    }
  }
};

/// Memory-accounting mode: eq. 24 (consolidated: same-type logical NFs
/// share blocks within a stage) vs eq. 25 (each logical NF rounds up to
/// whole blocks on its own — the "SFP without consolidation" baseline).
enum class MemoryModel { kConsolidated, kPerLogicalNf };

}  // namespace sfp::controlplane
