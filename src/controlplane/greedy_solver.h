// Greedy baseline (§V-D, Algorithm 2).
//
// SFCs are sorted by the eq. 13 metric (bandwidth per unit of rule
// resource, highest first) and placed one by one. Each box goes to the
// nearest later virtual stage that already hosts a physical NF of its
// type with enough memory; failing that, a new physical NF is installed
// at the nearest later stage whose memory allows. A chain that cannot
// finish within the pass budget — or whose admission would exceed the
// backplane capacity — is rolled back and skipped.
#pragma once

#include "controlplane/instance.h"
#include "controlplane/solution.h"

namespace sfp::controlplane {

struct GreedyOptions {
  int max_passes = 3;
  MemoryModel memory_model = MemoryModel::kConsolidated;
  /// Ablation: false places chains in arrival order instead of the
  /// eq. 13 metric order.
  bool sort_by_metric = true;
};

struct GreedyReport {
  PlacementSolution solution;
  double objective = 0.0;  // eq. 1
  double seconds = 0.0;
};

/// Runs Algorithm 2.
GreedyReport SolveGreedy(const PlacementInstance& instance, const GreedyOptions& options = {});

/// The placement kernel of Algorithm 2: offers chains to the
/// earliest-fit placer in exactly the given `order` (a permutation of
/// chain indices). Shared by SolveGreedy (eq. 13 metric order) and the
/// simulated-annealing solver (mutated orders).
PlacementSolution PlaceInOrder(const PlacementInstance& instance,
                               const std::vector<int>& order, const GreedyOptions& options);

}  // namespace sfp::controlplane
