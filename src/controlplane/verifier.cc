#include "controlplane/verifier.h"

#include <sstream>

namespace sfp::controlplane {
namespace {

VerifyResult Fail(const std::string& message) {
  VerifyResult r;
  r.ok = false;
  r.violation = message;
  return r;
}

}  // namespace

VerifyResult Verify(const PlacementInstance& instance, const PlacementSolution& solution,
                    const VerifyOptions& options) {
  const int S = instance.sw.stages;
  const int I = instance.num_types;
  const int K = options.max_passes * S;

  // ---- shapes ---------------------------------------------------------
  if (static_cast<int>(solution.physical.size()) != I) {
    return Fail("physical matrix has wrong type dimension");
  }
  for (const auto& row : solution.physical) {
    if (static_cast<int>(row.size()) != S) {
      return Fail("physical matrix has wrong stage dimension");
    }
  }
  if (solution.chains.size() != instance.sfcs.size()) {
    return Fail("chain placement count mismatch");
  }

  // ---- eq. 4: every type installed somewhere --------------------------
  if (options.require_all_types_installed) {
    for (int i = 0; i < I; ++i) {
      bool any = false;
      for (int s = 0; s < S; ++s) any |= solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
      if (!any) {
        std::ostringstream os;
        os << "NF type " << i << " not installed on any stage (eq. 4)";
        return Fail(os.str());
      }
    }
  }

  // ---- per-chain order + consistency ----------------------------------
  for (std::size_t l = 0; l < solution.chains.size(); ++l) {
    const auto& chain = solution.chains[l];
    const auto& sfc = instance.sfcs[l];
    if (!chain.placed) continue;
    if (chain.virtual_stages.size() != sfc.boxes.size()) {
      return Fail("placed chain has wrong number of stage assignments");
    }
    int prev = 0;
    for (std::size_t j = 0; j < sfc.boxes.size(); ++j) {
      const int k = chain.virtual_stages[j];
      if (k < 1 || k > K) {
        std::ostringstream os;
        os << "chain " << l << " box " << j << " at virtual stage " << k
           << " outside [1, " << K << "]";
        return Fail(os.str());
      }
      if (k <= prev) {
        std::ostringstream os;
        os << "chain " << l << " violates order (eq. 8) at box " << j;
        return Fail(os.str());
      }
      prev = k;
      const int s = (k - 1) % S;
      const int type = sfc.boxes[j].type;
      if (!solution.physical[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)]) {
        std::ostringstream os;
        os << "chain " << l << " box " << j << " (type " << type << ") at stage " << s
           << " has no physical NF (eq. 9)";
        return Fail(os.str());
      }
    }
  }

  // ---- memory (eq. 24 / eq. 25) ---------------------------------------
  const auto blocks = solution.BlocksPerStage(instance, options.memory_model);
  for (int s = 0; s < S; ++s) {
    if (blocks[static_cast<std::size_t>(s)] > instance.sw.blocks_per_stage) {
      std::ostringstream os;
      os << "stage " << s << " uses " << blocks[static_cast<std::size_t>(s)] << " blocks > B="
         << instance.sw.blocks_per_stage;
      return Fail(os.str());
    }
  }

  // ---- capacity (eq. 26) ----------------------------------------------
  const double backplane = solution.BackplaneGbps(instance);
  if (backplane > instance.sw.capacity_gbps + 1e-6) {
    std::ostringstream os;
    os << "backplane " << backplane << " Gbps exceeds C=" << instance.sw.capacity_gbps;
    return Fail(os.str());
  }

  return VerifyResult{};
}

}  // namespace sfp::controlplane
