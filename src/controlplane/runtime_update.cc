#include "controlplane/runtime_update.h"

#include "common/check.h"
#include "common/logging.h"

namespace sfp::controlplane {

RuntimeUpdateManager::RuntimeUpdateManager(PlacementInstance instance,
                                           RuntimeUpdateOptions options)
    : instance_(std::move(instance)), options_(options) {
  instance_.CheckValid();
  current_.physical.assign(static_cast<std::size_t>(instance_.num_types),
                           std::vector<bool>(static_cast<std::size_t>(instance_.sw.stages),
                                             false));
  current_.chains.resize(instance_.sfcs.size());
}

const PlacementSolution& RuntimeUpdateManager::PlaceInitial(int initial_candidates) {
  ApproxOptions solver_options = options_.solver;
  if (initial_candidates >= 0) {
    for (int l = initial_candidates; l < instance_.NumSfcs(); ++l) {
      solver_options.model.excluded.insert(l);
    }
  }
  const ApproxReport report = SolveApprox(instance_, solver_options);
  if (report.ok) current_ = report.solution;
  return current_;
}

int RuntimeUpdateManager::DropRandom(double drop_rate, Rng& rng) {
  int dropped = 0;
  for (auto& chain : current_.chains) {
    if (!chain.placed) continue;
    if (rng.Bernoulli(drop_rate)) {
      chain.placed = false;
      chain.virtual_stages.clear();
      ++dropped;
    }
  }
  return dropped;
}

bool RuntimeUpdateManager::Drop(int sfc_index) {
  SFP_CHECK_GE(sfc_index, 0);
  SFP_CHECK_LT(sfc_index, instance_.NumSfcs());
  auto& chain = current_.chains[static_cast<std::size_t>(sfc_index)];
  if (!chain.placed) return false;
  chain.placed = false;
  chain.virtual_stages.clear();
  return true;
}

std::set<int> RuntimeUpdateManager::Residents() const {
  std::set<int> residents;
  for (int l = 0; l < instance_.NumSfcs(); ++l) {
    if (current_.chains[static_cast<std::size_t>(l)].placed) residents.insert(l);
  }
  return residents;
}

const PlacementSolution& RuntimeUpdateManager::Refill() {
  full_reconfig_ = false;
  // Incremental solve: residents pinned where they are.
  ApproxOptions incremental = options_.solver;
  for (int l : Residents()) {
    incremental.model.pinned[l] =
        current_.chains[static_cast<std::size_t>(l)].virtual_stages;
  }
  const ApproxReport report = SolveApprox(instance_, incremental);
  if (report.ok) current_ = report.solution;

  if (options_.reoptimize_threshold > 0.0) {
    // Compare with a from-scratch placement; reconfigure fully if the
    // incremental one drifted below the threshold.
    const ApproxReport scratch = SolveApprox(instance_, options_.solver);
    if (scratch.ok &&
        report.objective < options_.reoptimize_threshold * scratch.objective) {
      SFP_LOG_INFO << "runtime update: full reconfiguration (incremental "
                   << report.objective << " < " << options_.reoptimize_threshold
                   << " x scratch " << scratch.objective << ")";
      current_ = scratch.solution;
      full_reconfig_ = true;
    }
  }
  return current_;
}

}  // namespace sfp::controlplane
