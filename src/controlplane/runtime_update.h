// Runtime update manager (§V-E).
//
// Tracks the resident placement; on tenant departures it releases their
// resources and re-runs the placement over the remaining residents
// (pinned in place — their rules are not moved) plus the full candidate
// pool, admitting new SFCs into the freed resources. A configurable
// re-optimization threshold triggers a full re-placement when the
// incremental configuration drifts too far from scratch-optimal.
#pragma once

#include <set>

#include "common/rng.h"
#include "controlplane/approx_solver.h"

namespace sfp::controlplane {

struct RuntimeUpdateOptions {
  ApproxOptions solver;
  /// If the incremental objective falls below `reoptimize_threshold` x
  /// the from-scratch objective, the manager re-places everything
  /// (§V-E: "once the distance between the current configuration and
  /// the optimal one exceeds the threshold, the whole SFCs and pipeline
  /// would be automatically re-configured"). 0 disables.
  double reoptimize_threshold = 0.0;
};

/// Stateful manager over one candidate pool.
class RuntimeUpdateManager {
 public:
  RuntimeUpdateManager(PlacementInstance instance, RuntimeUpdateOptions options = {});

  /// Initial placement considering only the first `initial_candidates`
  /// SFCs (the rest stay in the pool for later refills); -1 = all.
  const PlacementSolution& PlaceInitial(int initial_candidates = -1);

  /// Drops each resident SFC independently with probability
  /// `drop_rate`; returns how many left. Their resources are released.
  int DropRandom(double drop_rate, Rng& rng);

  /// Drops a specific resident; returns false if it was not resident.
  bool Drop(int sfc_index);

  /// Re-places: residents are pinned, every non-resident candidate may
  /// be admitted. Returns the updated placement. When the
  /// re-optimization threshold fires, residents are re-placed from
  /// scratch instead (counts as a full reconfiguration).
  const PlacementSolution& Refill();

  const PlacementSolution& current() const { return current_; }
  const PlacementInstance& instance() const { return instance_; }

  /// Indices of resident (currently placed) SFCs.
  std::set<int> Residents() const;

  /// True if the last Refill() performed a full reconfiguration.
  bool last_refill_was_full_reconfig() const { return full_reconfig_; }

 private:
  PlacementInstance instance_;
  RuntimeUpdateOptions options_;
  PlacementSolution current_;
  bool full_reconfig_ = false;
};

}  // namespace sfp::controlplane
