#include "controlplane/model_builder.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/units.h"

namespace sfp::controlplane {
namespace {

// Branching order: physical layout first, then chain indicators, then
// the counting integers, then individual box placements.
constexpr int kPriorityX = 100;
constexpr int kPriorityY = 50;
constexpr int kPriorityPasses = 40;
constexpr int kPriorityBlocks = 30;
constexpr int kPriorityZ = 10;

/// Whole blocks needed by one logical NF under eq. 25.
std::int64_t PerLogicalBlocks(const PlacementInstance& instance, const NfBox& box) {
  const std::int64_t units = box.MemoryUnits(instance.sw.rule_width);
  return std::max<std::int64_t>(1, CeilDiv(units, instance.sw.entries_per_block));
}

}  // namespace

PlacementModel BuildPlacementModel(const PlacementInstance& instance,
                                   const ModelOptions& options) {
  instance.CheckValid();
  SFP_CHECK_GE(options.max_passes, 1);
  const int I = instance.num_types;
  const int S = instance.sw.stages;
  const int L = instance.NumSfcs();
  const int K = options.max_passes * S;

  PlacementModel pm;
  pm.K = K;
  pm.options = options;
  lp::Model& model = pm.model;
  model.SetMaximize(true);

  // ---- variables -----------------------------------------------------
  pm.x.assign(static_cast<std::size_t>(I), std::vector<lp::VarId>(static_cast<std::size_t>(S)));
  for (int i = 0; i < I; ++i) {
    for (int s = 0; s < S; ++s) {
      pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] = model.AddVar(
          0, 1, 0, /*is_integer=*/true, "x_" + std::to_string(i) + "_" + std::to_string(s));
      model.SetBranchPriority(pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)],
                              kPriorityX);
    }
  }

  pm.y.resize(static_cast<std::size_t>(L));
  pm.z.resize(static_cast<std::size_t>(L));
  pm.passes.resize(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    const int J = sfc.Length();
    pm.y[static_cast<std::size_t>(l)] = model.AddVar(
        0, 1, sfc.ObjectiveWeight(), /*is_integer=*/true, "y_" + std::to_string(l));
    model.SetBranchPriority(pm.y[static_cast<std::size_t>(l)], kPriorityY);

    pm.z[static_cast<std::size_t>(l)].assign(
        static_cast<std::size_t>(J), std::vector<lp::VarId>(static_cast<std::size_t>(K) + 1, -1));
    for (int j = 0; j < J; ++j) {
      // Order (eq. 8) confines box j to [j+1, K - (J-1-j)].
      const int k_lo = j + 1;
      const int k_hi = K - (J - 1 - j);
      for (int k = k_lo; k <= k_hi; ++k) {
        pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
            [static_cast<std::size_t>(k)] = model.AddVar(
                0, 1, 0, /*is_integer=*/true,
                "z_" + std::to_string(l) + "_" + std::to_string(j) + "_" + std::to_string(k));
        model.SetBranchPriority(
            pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                [static_cast<std::size_t>(k)],
            kPriorityZ);
      }
    }
    // The tiny negative coefficient is a tie-break only: among
    // placements of equal eq. 1 value the solver prefers fewer passes,
    // keeping backplane capacity (eq. 26) free for more chains.
    pm.passes[static_cast<std::size_t>(l)] = model.AddVar(
        0, options.max_passes, -1e-6 * (1.0 + sfc.bandwidth_gbps), /*is_integer=*/true,
        "P_" + std::to_string(l));
    model.SetBranchPriority(pm.passes[static_cast<std::size_t>(l)], kPriorityPasses);
  }

  if (options.memory_model == MemoryModel::kConsolidated) {
    pm.blocks.assign(static_cast<std::size_t>(I),
                     std::vector<lp::VarId>(static_cast<std::size_t>(S)));
    for (int i = 0; i < I; ++i) {
      for (int s = 0; s < S; ++s) {
        pm.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] = model.AddVar(
            0, instance.sw.blocks_per_stage, 0, /*is_integer=*/true,
            "blk_" + std::to_string(i) + "_" + std::to_string(s));
        model.SetBranchPriority(
            pm.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)],
            kPriorityBlocks);
      }
    }
  }

  // ---- assignment: sum_k z[l][j][k] = y[l]  (eqs. 5-7) ----------------
  for (int l = 0; l < L; ++l) {
    const int J = instance.sfcs[static_cast<std::size_t>(l)].Length();
    for (int j = 0; j < J; ++j) {
      std::vector<lp::VarId> vars;
      std::vector<double> coeffs;
      for (int k = 1; k <= K; ++k) {
        const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(k)];
        if (v < 0) continue;
        vars.push_back(v);
        coeffs.push_back(1.0);
      }
      vars.push_back(pm.y[static_cast<std::size_t>(l)]);
      coeffs.push_back(-1.0);
      model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kEq, 0,
                   "assign_" + std::to_string(l) + "_" + std::to_string(j));
    }

    // ---- order: g[l][j+1] - g[l][j] >= y[l]  (eq. 8) ------------------
    for (int j = 0; j + 1 < J; ++j) {
      std::vector<lp::VarId> vars;
      std::vector<double> coeffs;
      for (int k = 1; k <= K; ++k) {
        const lp::VarId next = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j) + 1]
                                   [static_cast<std::size_t>(k)];
        if (next >= 0) {
          vars.push_back(next);
          coeffs.push_back(k);
        }
        const lp::VarId cur = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                  [static_cast<std::size_t>(k)];
        if (cur >= 0) {
          vars.push_back(cur);
          coeffs.push_back(-static_cast<double>(k));
        }
      }
      vars.push_back(pm.y[static_cast<std::size_t>(l)]);
      coeffs.push_back(-1.0);
      model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kGe, 0,
                   "order_" + std::to_string(l) + "_" + std::to_string(j));
    }

    // ---- passes: S * P[l] >= g[l][J-1]  (eq. 26 linearization) --------
    {
      std::vector<lp::VarId> vars{pm.passes[static_cast<std::size_t>(l)]};
      std::vector<double> coeffs{static_cast<double>(S)};
      for (int k = 1; k <= K; ++k) {
        const lp::VarId last = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(J) - 1]
                                   [static_cast<std::size_t>(k)];
        if (last < 0) continue;
        vars.push_back(last);
        coeffs.push_back(-static_cast<double>(k));
      }
      model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kGe, 0,
                   "passes_" + std::to_string(l));
    }
  }

  // ---- consistency (eq. 9) --------------------------------------------
  if (options.aggregated_consistency) {
    // Per (type, virtual stage): sum of that type's boxes at k <= N_i * x.
    std::vector<std::int64_t> type_box_count(static_cast<std::size_t>(I), 0);
    for (const auto& sfc : instance.sfcs) {
      for (const auto& box : sfc.boxes) ++type_box_count[static_cast<std::size_t>(box.type)];
    }
    for (int i = 0; i < I; ++i) {
      if (type_box_count[static_cast<std::size_t>(i)] == 0) continue;
      for (int k = 1; k <= K; ++k) {
        std::vector<lp::VarId> vars;
        std::vector<double> coeffs;
        for (int l = 0; l < L; ++l) {
          const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
          for (int j = 0; j < sfc.Length(); ++j) {
            if (sfc.boxes[static_cast<std::size_t>(j)].type != i) continue;
            const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                    [static_cast<std::size_t>(k)];
            if (v < 0) continue;
            vars.push_back(v);
            coeffs.push_back(1.0);
          }
        }
        if (vars.empty()) continue;
        vars.push_back(pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>((k - 1) % S)]);
        coeffs.push_back(-static_cast<double>(type_box_count[static_cast<std::size_t>(i)]));
        model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kLe, 0,
                     "agg_consist_" + std::to_string(i) + "_" + std::to_string(k));
      }
    }
  } else {
    for (int l = 0; l < L; ++l) {
      const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
      for (int j = 0; j < sfc.Length(); ++j) {
        const int type = sfc.boxes[static_cast<std::size_t>(j)].type;
        for (int k = 1; k <= K; ++k) {
          const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                  [static_cast<std::size_t>(k)];
          if (v < 0) continue;
          model.AddRow(
              {v, pm.x[static_cast<std::size_t>(type)][static_cast<std::size_t>((k - 1) % S)]},
              {1.0, -1.0}, lp::Sense::kLe, 0);
        }
      }
    }
  }

  // ---- coverage (eq. 4) ------------------------------------------------
  for (int i = 0; i < I; ++i) {
    std::vector<lp::VarId> vars;
    std::vector<double> coeffs;
    for (int s = 0; s < S; ++s) {
      vars.push_back(pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]);
      coeffs.push_back(1.0);
    }
    model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kGe, 1,
                 "coverage_" + std::to_string(i));
  }

  // ---- memory (eq. 24 / eq. 25) ----------------------------------------
  if (options.memory_model == MemoryModel::kConsolidated) {
    for (int i = 0; i < I; ++i) {
      for (int s = 0; s < S; ++s) {
        std::vector<lp::VarId> vars;
        std::vector<double> coeffs;
        for (int l = 0; l < L; ++l) {
          const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
          for (int j = 0; j < sfc.Length(); ++j) {
            if (sfc.boxes[static_cast<std::size_t>(j)].type != i) continue;
            const double mem = static_cast<double>(
                sfc.boxes[static_cast<std::size_t>(j)].MemoryUnits(instance.sw.rule_width));
            if (mem == 0.0) continue;
            for (int k = s + 1; k <= K; k += S) {
              const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                      [static_cast<std::size_t>(k)];
              if (v < 0) continue;
              vars.push_back(v);
              coeffs.push_back(mem);
            }
          }
        }
        if (vars.empty() && !options.reserve_block_per_physical_nf) continue;
        vars.push_back(pm.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]);
        coeffs.push_back(-static_cast<double>(instance.sw.entries_per_block));
        model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kLe, 0,
                     "mem_" + std::to_string(i) + "_" + std::to_string(s));
        if (options.reserve_block_per_physical_nf) {
          model.AddRow({pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)],
                        pm.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]},
                       {1.0, -1.0}, lp::Sense::kLe, 0);
        }
      }
    }
    for (int s = 0; s < S; ++s) {
      std::vector<lp::VarId> vars;
      std::vector<double> coeffs;
      for (int i = 0; i < I; ++i) {
        vars.push_back(pm.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]);
        coeffs.push_back(1.0);
      }
      model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kLe,
                   instance.sw.blocks_per_stage, "stage_mem_" + std::to_string(s));
    }
  } else {
    for (int s = 0; s < S; ++s) {
      std::vector<lp::VarId> vars;
      std::vector<double> coeffs;
      for (int l = 0; l < L; ++l) {
        const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
        for (int j = 0; j < sfc.Length(); ++j) {
          const double cost = static_cast<double>(
              PerLogicalBlocks(instance, sfc.boxes[static_cast<std::size_t>(j)]));
          for (int k = s + 1; k <= K; k += S) {
            const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                    [static_cast<std::size_t>(k)];
            if (v < 0) continue;
            vars.push_back(v);
            coeffs.push_back(cost);
          }
        }
      }
      if (vars.empty()) continue;
      model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kLe,
                   instance.sw.blocks_per_stage, "stage_mem_" + std::to_string(s));
    }
  }

  // ---- capacity (eq. 26) -----------------------------------------------
  {
    std::vector<lp::VarId> vars;
    std::vector<double> coeffs;
    for (int l = 0; l < L; ++l) {
      vars.push_back(pm.passes[static_cast<std::size_t>(l)]);
      coeffs.push_back(instance.sfcs[static_cast<std::size_t>(l)].bandwidth_gbps);
    }
    model.AddRow(std::move(vars), std::move(coeffs), lp::Sense::kLe,
                 instance.sw.capacity_gbps, "capacity");
  }

  // ---- pinned / excluded chains (§V-E runtime update) -------------------
  for (const auto& [l, stages] : options.pinned) {
    SFP_CHECK_GE(l, 0);
    SFP_CHECK_LT(l, L);
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    SFP_CHECK_EQ(static_cast<int>(stages.size()), sfc.Length());
    model.SetVarBounds(pm.y[static_cast<std::size_t>(l)], 1, 1);
    for (int j = 0; j < sfc.Length(); ++j) {
      for (int k = 1; k <= K; ++k) {
        const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(k)];
        if (v < 0) {
          SFP_CHECK_MSG(k != stages[static_cast<std::size_t>(j)],
                        "pinned placement outside the feasible window");
          continue;
        }
        const double fixed = k == stages[static_cast<std::size_t>(j)] ? 1.0 : 0.0;
        model.SetVarBounds(v, fixed, fixed);
      }
      // The physical NF backing the pinned box must stay installed.
      const int type = sfc.boxes[static_cast<std::size_t>(j)].type;
      const int s = (stages[static_cast<std::size_t>(j)] - 1) % S;
      model.SetVarBounds(pm.x[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)], 1,
                         1);
    }
  }
  for (int l : options.excluded) {
    SFP_CHECK_GE(l, 0);
    SFP_CHECK_LT(l, L);
    SFP_CHECK_MSG(!options.pinned.contains(l), "chain both pinned and excluded");
    model.SetVarBounds(pm.y[static_cast<std::size_t>(l)], 0, 0);
    for (auto& box : pm.z[static_cast<std::size_t>(l)]) {
      for (lp::VarId v : box) {
        if (v >= 0) model.SetVarBounds(v, 0, 0);
      }
    }
  }

  return pm;
}

PlacementSolution ExtractSolution(const PlacementInstance& instance,
                                  const PlacementModel& pm,
                                  const std::vector<double>& values) {
  const int I = instance.num_types;
  const int S = instance.sw.stages;
  PlacementSolution solution;
  solution.physical.assign(static_cast<std::size_t>(I),
                           std::vector<bool>(static_cast<std::size_t>(S), false));
  for (int i = 0; i < I; ++i) {
    for (int s = 0; s < S; ++s) {
      solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] =
          values[static_cast<std::size_t>(
              pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)])] > 0.5;
    }
  }
  solution.chains.resize(instance.sfcs.size());
  for (int l = 0; l < instance.NumSfcs(); ++l) {
    ChainPlacement& chain = solution.chains[static_cast<std::size_t>(l)];
    chain.placed = values[static_cast<std::size_t>(pm.y[static_cast<std::size_t>(l)])] > 0.5;
    if (!chain.placed) continue;
    const int J = instance.sfcs[static_cast<std::size_t>(l)].Length();
    for (int j = 0; j < J; ++j) {
      int best_k = -1;
      double best_v = 0.5;
      for (int k = 1; k <= pm.K; ++k) {
        const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(k)];
        if (v < 0) continue;
        const double value = values[static_cast<std::size_t>(v)];
        if (value > best_v) {
          best_v = value;
          best_k = k;
        }
      }
      SFP_CHECK_MSG(best_k > 0, "placed chain has a box without a stage assignment");
      chain.virtual_stages.push_back(best_k);
    }
  }
  return solution;
}

std::vector<double> SolutionToValues(const PlacementInstance& instance,
                                     const PlacementModel& pm,
                                     const PlacementSolution& solution) {
  const int I = instance.num_types;
  const int S = instance.sw.stages;
  std::vector<double> values(static_cast<std::size_t>(pm.model.num_vars()), 0.0);

  for (int i = 0; i < I; ++i) {
    for (int s = 0; s < S; ++s) {
      values[static_cast<std::size_t>(
          pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)])] =
          solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] ? 1.0
                                                                                      : 0.0;
    }
  }

  // Exact per-(type, stage) entry loads for the blocks ceilings.
  std::vector<std::vector<std::int64_t>> entries(
      static_cast<std::size_t>(I), std::vector<std::int64_t>(static_cast<std::size_t>(S), 0));

  for (int l = 0; l < instance.NumSfcs(); ++l) {
    const ChainPlacement& chain = solution.chains[static_cast<std::size_t>(l)];
    if (!chain.placed) continue;
    values[static_cast<std::size_t>(pm.y[static_cast<std::size_t>(l)])] = 1.0;
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    for (int j = 0; j < sfc.Length(); ++j) {
      const int k = chain.virtual_stages[static_cast<std::size_t>(j)];
      const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                              [static_cast<std::size_t>(k)];
      SFP_CHECK_MSG(v >= 0, "placement outside the model's feasible window");
      values[static_cast<std::size_t>(v)] = 1.0;
      entries[static_cast<std::size_t>(sfc.boxes[static_cast<std::size_t>(j)].type)]
             [static_cast<std::size_t>((k - 1) % S)] +=
          sfc.boxes[static_cast<std::size_t>(j)].MemoryUnits(instance.sw.rule_width);
    }
    values[static_cast<std::size_t>(pm.passes[static_cast<std::size_t>(l)])] =
        chain.Passes(S);
  }

  if (pm.options.memory_model == MemoryModel::kConsolidated) {
    for (int i = 0; i < I; ++i) {
      for (int s = 0; s < S; ++s) {
        std::int64_t blocks =
            CeilDiv(entries[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)],
                    instance.sw.entries_per_block);
        if (pm.options.reserve_block_per_physical_nf &&
            solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]) {
          blocks = std::max<std::int64_t>(blocks, 1);
        }
        values[static_cast<std::size_t>(
            pm.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)])] =
            static_cast<double>(blocks);
      }
    }
  }
  return values;
}

PlacementSolution GreedyCompleteFromLp(const PlacementInstance& instance,
                                       const PlacementModel& pm,
                                       const std::vector<double>& lp_values) {
  const int I = instance.num_types;
  const int S = instance.sw.stages;
  const int K = pm.K;
  PlacementSolution solution;
  solution.physical.assign(static_cast<std::size_t>(I),
                           std::vector<bool>(static_cast<std::size_t>(S), false));
  // The layout follows the LP's z demand (under the aggregated eq. 9
  // the x values are scaled down by the box count and carry little
  // signal; installs are free under eq. 24 anyway).
  for (int l = 0; l < instance.NumSfcs(); ++l) {
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    for (int j = 0; j < sfc.Length(); ++j) {
      for (int k = 1; k <= K; ++k) {
        const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(k)];
        if (v < 0) continue;
        if (lp_values[static_cast<std::size_t>(v)] > 1e-6) {
          solution.physical[static_cast<std::size_t>(sfc.boxes[static_cast<std::size_t>(j)].type)]
                           [static_cast<std::size_t>((k - 1) % S)] = true;
        }
      }
    }
  }
  for (int i = 0; i < I; ++i) {
    for (int s = 0; s < S; ++s) {
      if (lp_values[static_cast<std::size_t>(
              pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)])] > 0.5) {
        solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] = true;
      }
    }
  }
  solution.chains.resize(instance.sfcs.size());

  // Chains in descending y order; pinned chains go first unconditionally.
  std::vector<int> order;
  for (int l = 0; l < instance.NumSfcs(); ++l) order.push_back(l);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const bool pa = pm.options.pinned.contains(a), pb = pm.options.pinned.contains(b);
    if (pa != pb) return pa;
    return lp_values[static_cast<std::size_t>(pm.y[static_cast<std::size_t>(a)])] >
           lp_values[static_cast<std::size_t>(pm.y[static_cast<std::size_t>(b)])];
  });

  // Exact ledgers (consolidated entries or per-logical blocks).
  std::vector<std::vector<std::int64_t>> entries(
      static_cast<std::size_t>(I), std::vector<std::int64_t>(static_cast<std::size_t>(S), 0));
  std::vector<int> logical_blocks(static_cast<std::size_t>(S), 0);
  double backplane = 0.0;

  auto stage_blocks = [&](int s) {
    if (pm.options.memory_model == MemoryModel::kPerLogicalNf) {
      return logical_blocks[static_cast<std::size_t>(s)];
    }
    int blocks = 0;
    for (int i = 0; i < I; ++i) {
      const std::int64_t e = entries[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
      if (e > 0) blocks += static_cast<int>(CeilDiv(e, instance.sw.entries_per_block));
    }
    return blocks;
  };
  auto fits = [&](int type, int s, std::int64_t mem) {
    if (pm.options.memory_model == MemoryModel::kPerLogicalNf) {
      const int extra =
          static_cast<int>(std::max<std::int64_t>(1, CeilDiv(mem, instance.sw.entries_per_block)));
      return logical_blocks[static_cast<std::size_t>(s)] + extra <=
             instance.sw.blocks_per_stage;
    }
    const std::int64_t e = entries[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)];
    const int old_blocks = e > 0 ? static_cast<int>(CeilDiv(e, instance.sw.entries_per_block)) : 0;
    const int new_blocks = static_cast<int>(CeilDiv(e + mem, instance.sw.entries_per_block));
    return stage_blocks(s) - old_blocks + new_blocks <= instance.sw.blocks_per_stage;
  };
  auto charge = [&](int type, int s, std::int64_t mem) {
    entries[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)] += mem;
    if (pm.options.memory_model == MemoryModel::kPerLogicalNf) {
      logical_blocks[static_cast<std::size_t>(s)] += static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance.sw.entries_per_block)));
    }
  };
  auto refund = [&](int type, int s, std::int64_t mem) {
    entries[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)] -= mem;
    if (pm.options.memory_model == MemoryModel::kPerLogicalNf) {
      logical_blocks[static_cast<std::size_t>(s)] -= static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance.sw.entries_per_block)));
    }
  };

  for (int l : order) {
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    ChainPlacement& chain = solution.chains[static_cast<std::size_t>(l)];
    if (const auto pinned = pm.options.pinned.find(l); pinned != pm.options.pinned.end()) {
      chain.placed = true;
      chain.virtual_stages = pinned->second;
      for (int j = 0; j < sfc.Length(); ++j) {
        const int s = (pinned->second[static_cast<std::size_t>(j)] - 1) % S;
        charge(sfc.boxes[static_cast<std::size_t>(j)].type, s,
               sfc.boxes[static_cast<std::size_t>(j)].MemoryUnits(instance.sw.rule_width));
        solution.physical[static_cast<std::size_t>(sfc.boxes[static_cast<std::size_t>(j)].type)]
                         [static_cast<std::size_t>(s)] = true;
      }
      backplane += chain.Passes(S) * sfc.bandwidth_gbps;
      continue;
    }
    if (pm.options.excluded.contains(l)) continue;
    if (lp_values[static_cast<std::size_t>(pm.y[static_cast<std::size_t>(l)])] <= 0.5) continue;

    // Earliest-fit, preferring installed stages; a missing physical NF
    // is installed on demand (free under eq. 24).
    std::vector<int> stages;
    int prev = 0;
    bool failed = false;
    for (const NfBox& box : sfc.boxes) {
      int chosen = -1;
      for (int k = prev + 1; k <= K; ++k) {
        const int s = (k - 1) % S;
        if (!solution.physical[static_cast<std::size_t>(box.type)][static_cast<std::size_t>(s)]) {
          continue;
        }
        if (!fits(box.type, s, box.MemoryUnits(instance.sw.rule_width))) continue;
        chosen = k;
        break;
      }
      if (chosen < 0) {
        for (int k = prev + 1; k <= K; ++k) {
          const int s = (k - 1) % S;
          if (!fits(box.type, s, box.MemoryUnits(instance.sw.rule_width))) continue;
          chosen = k;
          solution.physical[static_cast<std::size_t>(box.type)][static_cast<std::size_t>(s)] =
              true;
          break;
        }
      }
      if (chosen < 0) {
        failed = true;
        break;
      }
      charge(box.type, (chosen - 1) % S, box.MemoryUnits(instance.sw.rule_width));
      stages.push_back(chosen);
      prev = chosen;
    }
    const int passes = failed ? 0 : (stages.back() + S - 1) / S;
    if (!failed &&
        backplane + passes * sfc.bandwidth_gbps > instance.sw.capacity_gbps + 1e-9) {
      failed = true;
    }
    if (failed) {
      for (std::size_t j = 0; j < stages.size(); ++j) {
        refund(sfc.boxes[j].type, (stages[j] - 1) % S, sfc.boxes[j].MemoryUnits(instance.sw.rule_width));
      }
      continue;
    }
    backplane += passes * sfc.bandwidth_gbps;
    chain.placed = true;
    chain.virtual_stages = std::move(stages);
  }

  // eq. 4 repair.
  for (int i = 0; i < I; ++i) {
    bool any = false;
    for (int s = 0; s < S; ++s) {
      any |= solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
    }
    if (!any) solution.physical[static_cast<std::size_t>(i)][0] = true;
  }
  return solution;
}

std::optional<PlacementSolution> StructuredRound(const PlacementInstance& instance,
                                                 const PlacementModel& pm,
                                                 const std::vector<double>& lp_values,
                                                 Rng& rng, const std::set<int>& stripped) {
  const int I = instance.num_types;
  const int S = instance.sw.stages;
  PlacementSolution solution;
  solution.physical.assign(static_cast<std::size_t>(I),
                           std::vector<bool>(static_cast<std::size_t>(S), false));
  // Round the physical layout first; box placement below is conditioned
  // on it so eq. 9 consistency holds by construction (dependent
  // rounding). Under the aggregated eq. 9 the LP's x values are scaled
  // down by the box count and carry little signal, so the layout
  // follows the LP's *z demand* — a physical NF is installed wherever
  // the relaxation put any of that type's boxes (installs are free
  // under eq. 24) — and elsewhere x rounds with its LP probability.
  std::vector<std::vector<double>> demand(
      static_cast<std::size_t>(I), std::vector<double>(static_cast<std::size_t>(S), 0.0));
  for (int l = 0; l < instance.NumSfcs(); ++l) {
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    for (int j = 0; j < sfc.Length(); ++j) {
      for (int k = 1; k <= pm.K; ++k) {
        const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(k)];
        if (v < 0) continue;
        demand[static_cast<std::size_t>(sfc.boxes[static_cast<std::size_t>(j)].type)]
              [static_cast<std::size_t>((k - 1) % S)] +=
            lp_values[static_cast<std::size_t>(v)];
      }
    }
  }
  for (int i = 0; i < I; ++i) {
    for (int s = 0; s < S; ++s) {
      const double x_lp = lp_values[static_cast<std::size_t>(
          pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)])];
      solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] =
          demand[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] > 1e-6 ||
          rng.Bernoulli(x_lp);
    }
  }
  // eq. 4 and pinned chains force their stages up regardless.
  for (const auto& [l, stages] : pm.options.pinned) {
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    for (int j = 0; j < sfc.Length(); ++j) {
      const int s = (stages[static_cast<std::size_t>(j)] - 1) % S;
      solution.physical[static_cast<std::size_t>(sfc.boxes[static_cast<std::size_t>(j)].type)]
                       [static_cast<std::size_t>(s)] = true;
    }
  }
  for (int i = 0; i < I; ++i) {
    bool any = false;
    for (int s = 0; s < S; ++s) {
      any |= solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
    }
    if (any) continue;
    int best_s = 0;
    double best_v = -1;
    for (int s = 0; s < S; ++s) {
      const double v = lp_values[static_cast<std::size_t>(
          pm.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)])];
      if (v > best_v) {
        best_v = v;
        best_s = s;
      }
    }
    solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(best_s)] = true;
  }

  // Exact ledgers mirror the verifier so sampled placements are
  // memory- and capacity-feasible by construction: a draw that would
  // overflow a stage leaves the chain in software instead of wasting
  // the whole rounding attempt.
  std::vector<std::vector<std::int64_t>> entries(
      static_cast<std::size_t>(I), std::vector<std::int64_t>(static_cast<std::size_t>(S), 0));
  std::vector<int> logical_blocks(static_cast<std::size_t>(S), 0);
  double backplane = 0.0;
  const bool per_logical = pm.options.memory_model == MemoryModel::kPerLogicalNf;
  auto stage_blocks = [&](int s) {
    if (per_logical) return logical_blocks[static_cast<std::size_t>(s)];
    int blocks = 0;
    for (int i = 0; i < I; ++i) {
      const std::int64_t e = entries[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
      if (e > 0) blocks += static_cast<int>(CeilDiv(e, instance.sw.entries_per_block));
    }
    return blocks;
  };
  auto fits = [&](int type, int s, std::int64_t mem) {
    if (per_logical) {
      const int extra = static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance.sw.entries_per_block)));
      return logical_blocks[static_cast<std::size_t>(s)] + extra <=
             instance.sw.blocks_per_stage;
    }
    const std::int64_t e = entries[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)];
    const int old_blocks = e > 0 ? static_cast<int>(CeilDiv(e, instance.sw.entries_per_block)) : 0;
    const int new_blocks = static_cast<int>(CeilDiv(e + mem, instance.sw.entries_per_block));
    return stage_blocks(s) - old_blocks + new_blocks <= instance.sw.blocks_per_stage;
  };
  auto charge = [&](int type, int s, std::int64_t mem) {
    entries[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)] += mem;
    if (per_logical) {
      logical_blocks[static_cast<std::size_t>(s)] += static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance.sw.entries_per_block)));
    }
  };
  auto refund = [&](int type, int s, std::int64_t mem) {
    entries[static_cast<std::size_t>(type)][static_cast<std::size_t>(s)] -= mem;
    if (per_logical) {
      logical_blocks[static_cast<std::size_t>(s)] -= static_cast<int>(
          std::max<std::int64_t>(1, CeilDiv(mem, instance.sw.entries_per_block)));
    }
  };

  solution.chains.resize(instance.sfcs.size());
  // Pinned residents consume their resources first (§V-E).
  for (const auto& [l, stages] : pm.options.pinned) {
    if (stripped.contains(l)) continue;
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    ChainPlacement& chain = solution.chains[static_cast<std::size_t>(l)];
    chain.placed = true;
    chain.virtual_stages = stages;
    for (int j = 0; j < sfc.Length(); ++j) {
      charge(sfc.boxes[static_cast<std::size_t>(j)].type,
             (stages[static_cast<std::size_t>(j)] - 1) % S,
             sfc.boxes[static_cast<std::size_t>(j)].MemoryUnits(instance.sw.rule_width));
    }
    backplane += chain.Passes(S) * sfc.bandwidth_gbps;
  }

  // Remaining chains in random order so resource ties don't
  // systematically starve high indices; each admitted with its LP
  // probability y.
  std::vector<int> order;
  for (int l = 0; l < instance.NumSfcs(); ++l) {
    if (!pm.options.pinned.contains(l) && !stripped.contains(l)) order.push_back(l);
  }
  rng.Shuffle(order);

  for (int l : order) {
    ChainPlacement& chain = solution.chains[static_cast<std::size_t>(l)];
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    const double y = lp_values[static_cast<std::size_t>(pm.y[static_cast<std::size_t>(l)])];
    if (!rng.Bernoulli(y)) continue;

    // Sample each box's stage from its z distribution restricted to
    // (a) stages after its predecessor (order, eq. 8), (b) stages whose
    // rounded layout hosts the box's type (consistency, eq. 9), and
    // (c) stages with memory headroom (eq. 24/25).
    std::vector<int> stages_chosen;
    int prev = 0;
    bool failed = false;
    for (int j = 0; j < sfc.Length() && !failed; ++j) {
      const NfBox& box = sfc.boxes[static_cast<std::size_t>(j)];
      const std::int64_t mem = box.MemoryUnits(instance.sw.rule_width);
      std::vector<double> weights;
      std::vector<int> candidates;
      for (int k = prev + 1; k <= pm.K; ++k) {
        const int s = (k - 1) % S;
        if (!solution.physical[static_cast<std::size_t>(box.type)][static_cast<std::size_t>(s)]) {
          continue;
        }
        const lp::VarId v = pm.z[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(k)];
        if (v < 0) continue;
        if (!fits(box.type, s, mem)) continue;
        candidates.push_back(k);
        // Consolidation bias: a stage already holding this type packs
        // the new rules into its partially-filled block (eq. 24), so
        // prefer it over opening a fresh (type, stage) pair.
        const double consolidation_bonus =
            entries[static_cast<std::size_t>(box.type)][static_cast<std::size_t>(s)] > 0 ? 4.0
                                                                                         : 1.0;
        // Pass-compactness bias: later passes burn shared backplane
        // capacity (eq. 26), so prefer the earliest feasible pass.
        const double pass_decay = 1.0 / (1 << std::min(8, (k - 1) / S));
        weights.push_back((lp_values[static_cast<std::size_t>(v)] + 1e-9) *
                          consolidation_bonus * pass_decay);
      }
      if (candidates.empty()) {
        // Repair: install the type at the nearest later stage with
        // memory headroom (physical installs cost nothing under the
        // eq. 24 model) instead of abandoning the chain.
        for (int k = prev + 1; k <= pm.K; ++k) {
          const int s = (k - 1) % S;
          if (!fits(box.type, s, mem)) continue;
          solution.physical[static_cast<std::size_t>(box.type)][static_cast<std::size_t>(s)] =
              true;
          candidates.push_back(k);
          weights.push_back(1.0);
          break;
        }
      }
      if (candidates.empty()) {
        failed = true;
        break;
      }
      prev = candidates[rng.WeightedIndex(weights)];
      charge(box.type, (prev - 1) % S, mem);
      stages_chosen.push_back(prev);
    }
    if (!failed) {
      const int passes = (stages_chosen.back() + S - 1) / S;
      if (backplane + passes * sfc.bandwidth_gbps > instance.sw.capacity_gbps + 1e-9) {
        failed = true;
      } else {
        backplane += passes * sfc.bandwidth_gbps;
      }
    }
    if (failed) {
      for (std::size_t j = 0; j < stages_chosen.size(); ++j) {
        refund(sfc.boxes[j].type, (stages_chosen[j] - 1) % S,
               sfc.boxes[j].MemoryUnits(instance.sw.rule_width));
      }
      continue;  // this chain stays in software this draw
    }
    chain.placed = true;
    chain.virtual_stages = std::move(stages_chosen);
  }

  // Augment pass: chains the Bernoulli draw left out (or that failed
  // their sample) are offered the residual resources earliest-fit, in
  // eq. 13 metric order — rounding never leaves obviously-free
  // capacity on the table.
  std::vector<int> leftovers;
  for (int l = 0; l < instance.NumSfcs(); ++l) {
    if (!solution.chains[static_cast<std::size_t>(l)].placed && !stripped.contains(l)) {
      leftovers.push_back(l);
    }
  }
  std::stable_sort(leftovers.begin(), leftovers.end(), [&instance](int a, int b) {
    return instance.sfcs[static_cast<std::size_t>(a)].GreedyMetric() >
           instance.sfcs[static_cast<std::size_t>(b)].GreedyMetric();
  });
  for (int l : leftovers) {
    const SfcSpec& sfc = instance.sfcs[static_cast<std::size_t>(l)];
    std::vector<int> stages_chosen;
    int prev = 0;
    bool failed = false;
    for (int j = 0; j < sfc.Length() && !failed; ++j) {
      const NfBox& box = sfc.boxes[static_cast<std::size_t>(j)];
      const std::int64_t mem = box.MemoryUnits(instance.sw.rule_width);
      int chosen = -1;
      for (int k = prev + 1; k <= pm.K; ++k) {
        const int s = (k - 1) % S;
        if (!fits(box.type, s, mem)) continue;
        chosen = k;
        solution.physical[static_cast<std::size_t>(box.type)][static_cast<std::size_t>(s)] =
            true;
        break;
      }
      if (chosen < 0) {
        failed = true;
        break;
      }
      charge(box.type, (chosen - 1) % S, mem);
      stages_chosen.push_back(chosen);
      prev = chosen;
    }
    if (!failed) {
      const int passes = (stages_chosen.back() + S - 1) / S;
      if (backplane + passes * sfc.bandwidth_gbps > instance.sw.capacity_gbps + 1e-9) {
        failed = true;
      } else {
        backplane += passes * sfc.bandwidth_gbps;
      }
    }
    if (failed) {
      for (std::size_t j = 0; j < stages_chosen.size(); ++j) {
        refund(sfc.boxes[j].type, (stages_chosen[j] - 1) % S,
               sfc.boxes[j].MemoryUnits(instance.sw.rule_width));
      }
      continue;
    }
    ChainPlacement& chain = solution.chains[static_cast<std::size_t>(l)];
    chain.placed = true;
    chain.virtual_stages = std::move(stages_chosen);
  }
  return solution;
}

}  // namespace sfp::controlplane
