#include "controlplane/admission_lp.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace sfp::controlplane {
namespace {

lp::SimplexOptions WarmOptions(bool warm) {
  lp::SimplexOptions options;
  options.warm_dual = warm;
  options.incremental = true;
  options.report_values = false;  // decisions read one var via Value()
  return options;
}

}  // namespace

IncrementalAdmissionLp::IncrementalAdmissionLp(AdmissionLpOptions options)
    : options_(std::move(options)) {
  for (std::size_t s = 0; s < options_.stage_capacity.size(); ++s) {
    model_.AddRow({}, {}, lp::Sense::kLe, options_.stage_capacity[s],
                  "stage" + std::to_string(s));
  }
  if (options_.backplane_gbps > 0.0) {
    backplane_row_ = model_.AddRow({}, {}, lp::Sense::kLe, options_.backplane_gbps,
                                   "backplane");
  }
}

lp::VarId IncrementalAdmissionLp::AppendColumn(lp::Model& model,
                                               const TenantFootprint& footprint,
                                               double lower, double upper,
                                               int num_stage_rows,
                                               lp::RowId backplane_row) {
  const lp::VarId var =
      model.AddVar(lower, upper, footprint.bandwidth_gbps, /*is_integer=*/false);
  for (const auto& [stage, entries] : footprint.stage_entries) {
    SFP_CHECK_GE(stage, 0);
    SFP_CHECK_LT(stage, num_stage_rows);
    if (entries != 0.0) model.AddRowCoefficient(stage, var, entries);
  }
  if (backplane_row >= 0 && footprint.BackplaneCharge() != 0.0) {
    model.AddRowCoefficient(backplane_row, var, footprint.BackplaneCharge());
  }
  return var;
}

lp::VarId IncrementalAdmissionLp::AppendLiveColumn(const TenantFootprint& footprint,
                                                   double lower, double upper) {
  const lp::VarId var =
      AppendColumn(model_, footprint, lower, upper,
                   static_cast<int>(options_.stage_capacity.size()), backplane_row_);
  if (simplex_) {
    // Mirror the model edit into the live solver: the column lands
    // nonbasic at a bound and the basis factors stay valid.
    std::vector<lp::RowId> rows;
    std::vector<double> coeffs;
    for (const auto& [stage, entries] : footprint.stage_entries) {
      if (entries == 0.0) continue;
      rows.push_back(stage);
      coeffs.push_back(entries);
    }
    if (backplane_row_ >= 0 && footprint.BackplaneCharge() != 0.0) {
      rows.push_back(backplane_row_);
      coeffs.push_back(footprint.BackplaneCharge());
    }
    const lp::VarId mirrored = simplex_->AddColumn(
        lower, upper, footprint.bandwidth_gbps, rows, coeffs);
    SFP_CHECK_EQ(mirrored, var);
  }
  return var;
}

AdmissionDecision IncrementalAdmissionLp::DecideFrom(
    lp::Simplex& simplex, lp::VarId candidate, const lp::Solution& solution) const {
  AdmissionDecision decision;
  if (solution.status != lp::SolveStatus::kOptimal) {
    // The committed set was feasible by induction and the candidate can
    // always sit at 0, so anything but optimal is a solver failure;
    // fail closed.
    return decision;
  }
  decision.objective = solution.objective;
  decision.candidate_value = simplex.Value(candidate);
  decision.admitted = decision.candidate_value >= 1.0 - options_.admit_tol;
  return decision;
}

AdmissionDecision IncrementalAdmissionLp::TryAdmit(TenantKey tenant,
                                                   const TenantFootprint& footprint) {
  SFP_CHECK_MSG(!columns_.contains(tenant), "tenant already committed");
  SFP_CHECK_MSG(footprint.bandwidth_gbps > 0.0,
                "admission candidate needs positive bandwidth");

  const lp::VarId candidate = AppendLiveColumn(footprint, 0.0, 1.0);
  if (!simplex_) simplex_.emplace(model_, WarmOptions(options_.warm));

  const auto before = simplex_->stats();
  const lp::Solution solution = simplex_->Solve();
  const auto& after = simplex_->stats();

  ++counters_.solves;
  counters_.warm_attempts += after.warm_attempts - before.warm_attempts;
  counters_.warm_successes += after.warm_successes - before.warm_successes;
  counters_.dual_iterations += after.dual_iterations - before.dual_iterations;
  counters_.total_iterations += after.iterations - before.iterations;
  counters_.phase1_iterations += after.phase1_iterations - before.phase1_iterations;

  AdmissionDecision decision = DecideFrom(*simplex_, candidate, solution);
  decision.warm_hit = after.warm_successes > before.warm_successes;

  if (decision.admitted) {
    // Commit: pin the candidate at 1 so later re-solves treat it as a
    // fixed column (compressed out of pricing).
    model_.SetVarBounds(candidate, 1.0, 1.0);
    simplex_->SetVarBounds(candidate, 1.0, 1.0);
    columns_.emplace(tenant, Committed{candidate, footprint});
    ++counters_.admitted;
  } else {
    model_.SetVarBounds(candidate, 0.0, 0.0);
    simplex_->SetVarBounds(candidate, 0.0, 0.0);
    ++dead_columns_;
    ++counters_.rejected;
  }
  return decision;
}

void IncrementalAdmissionLp::Commit(TenantKey tenant, const TenantFootprint& footprint) {
  SFP_CHECK_MSG(!columns_.contains(tenant), "tenant already committed");
  const lp::VarId var = AppendLiveColumn(footprint, 1.0, 1.0);
  columns_.emplace(tenant, Committed{var, footprint});
}

bool IncrementalAdmissionLp::Remove(TenantKey tenant) {
  const auto it = columns_.find(tenant);
  if (it == columns_.end()) return false;
  const lp::VarId var = it->second.var;
  model_.SetVarBounds(var, 0.0, 0.0);
  if (simplex_) simplex_->SetVarBounds(var, 0.0, 0.0);
  columns_.erase(it);
  ++dead_columns_;
  if (dead_columns_ > std::max<std::int64_t>(
                          static_cast<std::int64_t>(columns_.size()),
                          options_.rebuild_slack)) {
    RebuildFromLive();
  }
  return true;
}

void IncrementalAdmissionLp::RebuildFromLive() {
  lp::Model fresh;
  for (std::size_t s = 0; s < options_.stage_capacity.size(); ++s) {
    fresh.AddRow({}, {}, lp::Sense::kLe, options_.stage_capacity[s],
                 "stage" + std::to_string(s));
  }
  lp::RowId backplane = -1;
  if (options_.backplane_gbps > 0.0) {
    backplane = fresh.AddRow({}, {}, lp::Sense::kLe, options_.backplane_gbps,
                             "backplane");
  }
  for (auto& [tenant, committed] : columns_) {
    committed.var =
        AppendColumn(fresh, committed.footprint, 1.0, 1.0,
                     static_cast<int>(options_.stage_capacity.size()), backplane);
  }
  model_ = std::move(fresh);
  backplane_row_ = backplane;
  simplex_.reset();  // next TryAdmit cold-starts once, then re-warms
  dead_columns_ = 0;
  ++counters_.rebuilds;
}

AdmissionDecision IncrementalAdmissionLp::ColdReference(
    TenantKey tenant, const TenantFootprint& footprint) const {
  SFP_CHECK_MSG(!columns_.contains(tenant), "tenant already committed");
  lp::Model model;
  for (std::size_t s = 0; s < options_.stage_capacity.size(); ++s) {
    model.AddRow({}, {}, lp::Sense::kLe, options_.stage_capacity[s],
                 "stage" + std::to_string(s));
  }
  lp::RowId backplane = -1;
  if (options_.backplane_gbps > 0.0) {
    backplane = model.AddRow({}, {}, lp::Sense::kLe, options_.backplane_gbps,
                             "backplane");
  }
  for (const auto& [key, committed] : columns_) {
    AppendColumn(model, committed.footprint, 1.0, 1.0,
                 static_cast<int>(options_.stage_capacity.size()), backplane);
  }
  const lp::VarId candidate =
      AppendColumn(model, footprint, 0.0, 1.0,
                   static_cast<int>(options_.stage_capacity.size()), backplane);
  lp::Simplex cold(model);  // legacy configuration: slack basis, phase 1
  return DecideFrom(cold, candidate, cold.Solve());
}

void IncrementalAdmissionLp::ExportMetrics(common::metrics::Registry& registry) const {
  registry.GetCounter("solver.warm.solves").Set(static_cast<std::uint64_t>(counters_.solves));
  registry.GetCounter("solver.warm.admitted")
      .Set(static_cast<std::uint64_t>(counters_.admitted));
  registry.GetCounter("solver.warm.rejected")
      .Set(static_cast<std::uint64_t>(counters_.rejected));
  registry.GetCounter("solver.warm.attempts")
      .Set(static_cast<std::uint64_t>(counters_.warm_attempts));
  registry.GetCounter("solver.warm.successes")
      .Set(static_cast<std::uint64_t>(counters_.warm_successes));
  const std::int64_t pct = counters_.warm_attempts > 0
                               ? counters_.warm_successes * 100 / counters_.warm_attempts
                               : 0;
  registry.GetCounter("solver.warm.hit_pct").Set(static_cast<std::uint64_t>(pct));
  registry.GetCounter("solver.warm.dual_iterations")
      .Set(static_cast<std::uint64_t>(counters_.dual_iterations));
  registry.GetCounter("solver.warm.total_iterations")
      .Set(static_cast<std::uint64_t>(counters_.total_iterations));
  registry.GetCounter("solver.warm.phase1_iterations")
      .Set(static_cast<std::uint64_t>(counters_.phase1_iterations));
  registry.GetCounter("solver.warm.rebuilds")
      .Set(static_cast<std::uint64_t>(counters_.rebuilds));
}

}  // namespace sfp::controlplane
