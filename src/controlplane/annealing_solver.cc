#include "controlplane/annealing_solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stopwatch.h"

namespace sfp::controlplane {

AnnealingReport SolveAnnealing(const PlacementInstance& instance,
                               const AnnealingOptions& options) {
  instance.CheckValid();
  Stopwatch watch;
  Rng rng(options.seed);

  // Start from the greedy metric order (eq. 13) so the annealer's
  // floor is the greedy solution.
  std::vector<int> order(static_cast<std::size_t>(instance.NumSfcs()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&instance](int a, int b) {
    return instance.sfcs[static_cast<std::size_t>(a)].GreedyMetric() >
           instance.sfcs[static_cast<std::size_t>(b)].GreedyMetric();
  });

  AnnealingReport report;
  PlacementSolution current = PlaceInOrder(instance, order, options.placement);
  double current_objective = current.ObjectiveWeighted(instance);
  report.solution = current;
  report.objective = current_objective;

  if (order.size() >= 2) {
    double temperature = options.initial_temperature;
    for (int it = 0; it < options.iterations; ++it) {
      const auto a =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(order.size()) - 1));
      auto b =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(order.size()) - 1));
      if (a == b) b = (b + 1) % order.size();
      std::swap(order[a], order[b]);

      PlacementSolution candidate = PlaceInOrder(instance, order, options.placement);
      const double objective = candidate.ObjectiveWeighted(instance);
      const double delta = objective - current_objective;
      const bool accept =
          delta >= 0.0 || rng.UniformDouble() < std::exp(delta / std::max(temperature, 1e-9));
      if (accept) {
        ++report.accepted_moves;
        if (delta > 0.0) ++report.improving_moves;
        current_objective = objective;
        if (objective > report.objective) {
          report.objective = objective;
          report.solution = std::move(candidate);
        }
      } else {
        std::swap(order[a], order[b]);  // undo
      }
      temperature *= options.cooling;
    }
  }

  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace sfp::controlplane
