#include "controlplane/approx_solver.h"

#include <algorithm>
#include <limits>

#include "common/faultinject.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "lp/simplex.h"

namespace sfp::controlplane {
namespace {

/// The SFC to strip: lowest eq. 13 metric among still-candidate chains
/// ("requires most resource but least bandwidth").
int PickStripVictim(const PlacementInstance& instance, const std::set<int>& stripped,
                    const std::map<int, std::vector<int>>& pinned) {
  int victim = -1;
  double worst = std::numeric_limits<double>::infinity();
  for (int l = 0; l < instance.NumSfcs(); ++l) {
    if (stripped.contains(l) || pinned.contains(l)) continue;
    const double metric = instance.sfcs[static_cast<std::size_t>(l)].GreedyMetric();
    if (metric < worst) {
      worst = metric;
      victim = l;
    }
  }
  return victim;
}

}  // namespace

ApproxReport SolveApprox(const PlacementInstance& instance, const ApproxOptions& options) {
  ApproxReport report;
  Stopwatch watch;
  Rng rng(options.seed);

  // Deadline exhaustion — the real wall clock or the injected fault —
  // ends the sweep gracefully with whatever has verified so far.
  auto deadline_hit = [&options, &watch, &report]() {
    if (report.deadline_exceeded) return true;
    if (SFP_FAULT("controlplane.solver_deadline") ||
        (options.deadline_seconds > 0.0 &&
         watch.ElapsedSeconds() > options.deadline_seconds)) {
      report.deadline_exceeded = true;
      SFP_LOG_WARN << "solver deadline exhausted after " << watch.ElapsedSeconds()
                   << " s; returning best-so-far (verified=" << report.ok << ")";
      return true;
    }
    return false;
  };

  const int first_passes = options.only_max_passes ? options.model.max_passes : 1;
  for (int passes = first_passes; passes <= options.model.max_passes; ++passes) {
    if (deadline_hit()) break;
    ModelOptions model_options = options.model;
    model_options.max_passes = passes;
    PlacementModel pm = BuildPlacementModel(instance, model_options);

    lp::Simplex simplex(pm.model, options.simplex);
    const lp::Solution lp = simplex.Solve();
    ++report.lp_solves;
    if (lp.status != lp::SolveStatus::kOptimal) {
      SFP_LOG_WARN << "LP relaxation at r=" << passes - 1
                   << " ended with status " << lp::ToString(lp.status);
      continue;
    }
    report.lp_bound = std::max(report.lp_bound, lp.objective);

    VerifyOptions verify_options;
    verify_options.memory_model = model_options.memory_model;
    verify_options.max_passes = passes;

    std::set<int> stripped = model_options.excluded;
    int consecutive_failures = 0;
    for (int attempt = 0; attempt < options.rounding_attempts; ++attempt) {
      if (deadline_hit()) break;
      ++report.roundings;
      auto candidate = StructuredRound(instance, pm, lp.values, rng, stripped);
      bool accepted = false;
      if (candidate) {
        const auto verdict = Verify(instance, *candidate, verify_options);
        if (verdict.ok) {
          accepted = true;
          const double objective = candidate->ObjectiveWeighted(instance);
          if (!report.ok || objective > report.objective) {
            report.ok = true;
            report.objective = objective;
            report.solution = std::move(*candidate);
          }
        }
      }
      if (accepted) {
        consecutive_failures = 0;
      } else if (++consecutive_failures >= options.strip_after_failures) {
        const int victim = PickStripVictim(instance, stripped, model_options.pinned);
        if (victim < 0) break;  // nothing left to strip
        stripped.insert(victim);
        ++report.stripped_sfcs;
        consecutive_failures = 0;
        SFP_LOG_DEBUG << "stripping SFC " << victim << " (eq. 13 metric "
                      << instance.sfcs[static_cast<std::size_t>(victim)].GreedyMetric() << ")";
      }
    }
  }

  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace sfp::controlplane
