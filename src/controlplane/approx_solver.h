// SFP-Appro: LP relaxation + randomized rounding (§V-B, Algorithm 1).
//
// For each recirculation budget r in 1..max_passes, the IP is relaxed
// to an LP over K = r*S virtual stages and solved in polynomial time;
// the fractional point is then rounded repeatedly (StructuredRound)
// until the exact verifier accepts it. When a stretch of roundings
// keeps failing, the SFC with the worst eq. 13 metric (most resource
// per offloaded bit) is stripped from the candidate set and rounding
// resumes. The best verified solution across all r wins.
#pragma once

#include "controlplane/model_builder.h"
#include "controlplane/verifier.h"
#include "lp/simplex.h"

namespace sfp::controlplane {

struct ApproxOptions {
  ModelOptions model;
  /// Rounding draws per recirculation budget before giving up.
  int rounding_attempts = 80;
  /// Consecutive failed roundings before stripping one SFC.
  int strip_after_failures = 8;
  /// Solve only the largest recirculation budget instead of Algorithm
  /// 1's full r = 0..R sweep. Any placement feasible for a smaller r is
  /// feasible in the largest-K model, so this trades a little rounding
  /// quality for one LP solve instead of R+1 (used by the larger
  /// bench sweeps).
  bool only_max_passes = false;
  std::uint64_t seed = 1;
  /// Wall-clock budget in seconds; 0 disables. When the budget (or the
  /// "controlplane.solver_deadline" fault point) trips mid-sweep the
  /// solver stops early and returns the best verified solution found so
  /// far — ok stays false if nothing verified — with
  /// deadline_exceeded set so callers can degrade (greedy fallback).
  double deadline_seconds = 0.0;
  /// LP-engine knobs (e.g. `simplex.use_dense_inverse` to benchmark the
  /// legacy dense kernels against the sparse LU default).
  lp::SimplexOptions simplex;
};

struct ApproxReport {
  PlacementSolution solution;
  /// eq. 1 objective (0 if nothing verified).
  double objective = 0.0;
  double seconds = 0.0;
  bool ok = false;
  /// Diagnostics.
  int lp_solves = 0;
  int roundings = 0;
  int stripped_sfcs = 0;
  /// LP-relaxation optimum at the largest r (an upper bound on the IP).
  double lp_bound = 0.0;
  /// The deadline (or its fault point) cut the sweep short.
  bool deadline_exceeded = false;
};

/// Runs Algorithm 1.
ApproxReport SolveApprox(const PlacementInstance& instance, const ApproxOptions& options = {});

}  // namespace sfp::controlplane
