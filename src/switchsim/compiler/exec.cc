#include "switchsim/compiler/exec.h"

#include "common/check.h"
#include "common/faultinject.h"
#include "switchsim/compiler/plan_cache.h"
#include "switchsim/pipeline.h"

namespace sfp::switchsim::compiler {

void PlanDeltas::AddDrop(DropReason reason) {
  drops += 1;
  switch (reason) {
    case DropReason::kNone:
    case DropReason::kNfAction:
      drops_nf += 1;
      break;
    case DropReason::kRecirculationGuard:
      drops_guard += 1;
      break;
    case DropReason::kRecirculationOverload:
      drops_overload += 1;
      break;
    case DropReason::kInjectedFault:
      drops_injected += 1;
      break;
  }
}

ExecContext::Entry* ExecContext::Miss(std::uint16_t tenant) {
  Entry entry;
  entry.tenant = tenant;
  entry.plan = cache_.Acquire(tenant);
  if (entry.plan != nullptr) entry.deltas.tables.resize(entry.plan->table_epochs.size());
  entries_.push_back(std::move(entry));
  mru_ = entries_.size() - 1;
  return Check(entries_.back());
}

ExecContext::Entry* ExecContext::Revalidate(Entry& entry) {
  // A table mutated underneath the plan — either a direct AddEntry
  // with no DataPlane hook, or another tenant's install bumping a
  // shared table's epoch. Report it (the cache bumps its generation)
  // and recompile in place, so the very next lookup serves compiled
  // again. Deltas already buffered against the stale plan are retired,
  // not dropped. If another worker holds the compile lock — or a
  // mutation races the recompile — interpret until a fresh compile
  // lands.
  cache_.Invalidate(entry.tenant);
  if (entry.deltas.packets != 0) {
    retired_.emplace_back(std::move(entry.plan), std::move(entry.deltas));
  }
  entry.plan = cache_.Acquire(entry.tenant);
  entry.deltas = PlanDeltas{};
  if (entry.plan == nullptr) return nullptr;
  entry.deltas.tables.resize(entry.plan->table_epochs.size());
  if (!entry.plan->Validate()) return nullptr;
  return &entry;
}

void ExecContext::RetireAll() {
  for (Entry& entry : entries_) {
    if (entry.plan != nullptr && entry.deltas.packets != 0) {
      retired_.emplace_back(std::move(entry.plan), std::move(entry.deltas));
    }
  }
  entries_.clear();
  mru_ = 0;
}

namespace {

void FlushOne(Pipeline& pipeline, const CompiledPlan& plan, const PlanDeltas& deltas) {
  for (std::size_t i = 0; i < deltas.tables.size(); ++i) {
    const PlanDeltas::TableCounts& counts = deltas.tables[i];
    if ((counts.hits | counts.misses | counts.default_hits) != 0) {
      plan.table_epochs[i].first->AddApplyCounts(counts.hits, counts.misses,
                                                 counts.default_hits);
    }
  }
  pipeline.AddCompiledCounts(deltas);
}

}  // namespace

void ExecContext::Flush(Pipeline& pipeline) {
  for (const Entry& entry : entries_) {
    if (entry.plan != nullptr && entry.deltas.packets != 0) {
      FlushOne(pipeline, *entry.plan, entry.deltas);
    }
  }
  for (const auto& [plan, deltas] : retired_) {
    FlushOne(pipeline, *plan, deltas);
  }
  entries_.clear();
  retired_.clear();
  mru_ = 0;
}

namespace {

/// Inline specialization of switchsim::GetField for the compiled hot
/// path: identical field semantics (see types.cc), but header-level
/// inlinable and with direct port access instead of building a full
/// FiveTuple per port read.
inline std::uint64_t ExtractField(const net::Packet& packet, const PacketMeta& meta,
                                  FieldId field) {
  switch (field) {
    case FieldId::kTenantId:
      return meta.tenant_id;
    case FieldId::kPass:
      return meta.pass;
    case FieldId::kSrcIp:
      return packet.ipv4 ? packet.ipv4->src.value : 0;
    case FieldId::kDstIp:
      return packet.ipv4 ? packet.ipv4->dst.value : 0;
    case FieldId::kSrcPort:
      if (packet.tcp) return packet.tcp->src_port;
      if (packet.udp) return packet.udp->src_port;
      return 0;
    case FieldId::kDstPort:
      if (packet.tcp) return packet.tcp->dst_port;
      if (packet.udp) return packet.udp->dst_port;
      return 0;
    case FieldId::kIpProto:
      return packet.ipv4 ? packet.ipv4->protocol : 0;
    case FieldId::kDscp:
      return packet.ipv4 ? packet.ipv4->dscp : 0;
    case FieldId::kFlowClass:
      return meta.flow_class;
    case FieldId::kEthType:
      return packet.eth.ether_type;
  }
  return 0;
}

inline bool OpMatches(const CompiledOp& op, const std::uint64_t* values) {
  const std::uint64_t value = values[op.field];
  switch (op.kind) {
    case MatchKind::kExact:
      return value == op.a;
    case MatchKind::kTernary:
    case MatchKind::kLpm:
      return (value & op.b) == op.a;
    case MatchKind::kRange:
      return value >= op.a && value <= op.b;
  }
  return false;
}

/// Inline dispatch of a compiled action. Each opcode is a bit-exact
/// transliteration of the NF library's registered callback (see
/// action_traits.h); kOpaque runs the callback itself.
inline void ApplyAction(const CompiledPlan& plan, const CompiledAction& act,
                        net::Packet& packet, PacketMeta& meta) {
  using Kind = ActionTraits::Kind;
  switch (act.kind) {
    case Kind::kNoop:
      break;
    case Kind::kDrop:
      meta.dropped = true;
      break;
    case Kind::kSetFlowClass:
      meta.flow_class = static_cast<std::uint8_t>(act.arg0);
      break;
    case Kind::kRoute:
      meta.egress_port = static_cast<std::int32_t>(act.arg0);
      if (packet.ipv4) {
        if (packet.ipv4->ttl == 0 || --packet.ipv4->ttl == 0) {
          meta.dropped = true;
        }
      }
      break;
    case Kind::kSetBackend:
      if (packet.ipv4) packet.ipv4->dst.value = static_cast<std::uint32_t>(act.arg0);
      meta.scratch = act.arg0;
      break;
    case Kind::kSetSrcIp:
      if (packet.ipv4) packet.ipv4->src.value = static_cast<std::uint32_t>(act.arg0);
      break;
    case Kind::kOpaque: {
      const CompiledPlan::OpaqueAction& opaque =
          plan.opaque_actions[static_cast<std::size_t>(act.opaque)];
      opaque.fn(packet, meta, opaque.args);
      return;  // the callback carries its own REC wrapper
    }
  }
  if (act.recirculate && !meta.dropped) meta.recirculate = true;
}

}  // namespace

}  // namespace sfp::switchsim::compiler

namespace sfp::switchsim {

// Defined here rather than pipeline.cc so the compiled serve path and
// its data structures live together; it is a Pipeline member for access
// to the config, the recirculation port, and the counters ProcessOne
// uses.
void Pipeline::ExecuteCompiled(const compiler::CompiledPlan& plan,
                               const net::Packet& packet, compiler::PlanDeltas& deltas,
                               ProcessResult& result) {
  using compiler::SlotKind;

  result.packet = packet;
  PacketMeta meta;
  meta.tenant_id = packet.TenantId();
  meta.time_ns = packet.ingress_time_ns;
  result.meta = meta;
  result.passes = 1;
  result.active_stages = 0;
  result.idle_stages = 0;
  result.latency_ns = 0.0;
  result.parse_error = false;
  deltas.packets += 1;

  if (SFP_FAULT("switchsim.pipeline.serve")) {
    result.meta.dropped = true;
    result.meta.drop_reason = DropReason::kInjectedFault;
    deltas.AddDrop(result.meta.drop_reason);
    result.latency_ns = config_.timing.LatencyNs(0, 0, result.passes);
    return;
  }

  std::uint64_t values[compiler::kNumFields];
  for (;;) {
    result.meta.recirculate = false;
    const compiler::CompiledPass& pass =
        static_cast<std::size_t>(result.meta.pass) < plan.passes.size()
            ? plan.passes[result.meta.pass]
            : plan.tail;

    // Stage-activity bookkeeping mirrors the interpreter: a stage is
    // active iff any of its tables hit an installed entry; on a drop
    // the dropping stage is still counted, later stages are not.
    int current_stage = 0;
    bool stage_active = false;
    bool aborted = false;
    for (const compiler::CompiledGroup& group : pass.groups) {
      for (const std::uint8_t field : group.extract_fields) {
        values[field] =
            compiler::ExtractField(result.packet, result.meta, static_cast<FieldId>(field));
      }
      // Eager matching (the fusion pass guarantees no member's action
      // writes a field a later member reads): resolve each slot's
      // winning entry index before any action runs.
      // winner[] is indexed by *live* slot position: dead slots never
      // resolve an entry, and the fusion cap (kMaxFusedSlots) counts
      // only live members, so a group may hold more total slots than
      // winner has entries.
      std::int32_t winner[compiler::kMaxFusedSlots];
      std::uint32_t live = 0;
      for (std::uint32_t s = 0; s < group.slot_count; ++s) {
        const compiler::CompiledSlot& slot = pass.slots[group.slot_begin + s];
        if (slot.kind == SlotKind::kDead) continue;
        winner[live] = -1;
        if (slot.kind == SlotKind::kAlways) {
          winner[live++] = 0;
          continue;
        }
        const std::size_t entries = slot.op_begin.size();
        for (std::size_t e = 0; e < entries; ++e) {
          const std::uint32_t begin = slot.op_begin[e];
          const std::uint16_t count = slot.op_count[e];
          bool match = true;
          for (std::uint16_t o = 0; o < count; ++o) {
            if (!compiler::OpMatches(plan.ops[begin + o], values)) {
              match = false;
              break;
            }
          }
          if (match) {
            // Entries are pre-sorted in winner order, so the first
            // full match is the lookup winner.
            winner[live] = static_cast<std::int32_t>(e);
            break;
          }
        }
        ++live;
      }
      // Commit counters and run actions in slot (program) order. Dead
      // slots take the miss/default path without consuming a winner.
      live = 0;
      for (std::uint32_t s = 0; s < group.slot_count; ++s) {
        const compiler::CompiledSlot& slot = pass.slots[group.slot_begin + s];
        const std::int32_t w = slot.kind == SlotKind::kDead ? -1 : winner[live++];
        if (slot.stage != current_stage) {
          // Cross stage boundaries in O(1): the stage being left
          // contributes its activity flag once; every stage skipped
          // over (no slots) was idle.
          result.active_stages += stage_active ? 1 : 0;
          result.idle_stages += slot.stage - current_stage - (stage_active ? 1 : 0);
          stage_active = false;
          current_stage = slot.stage;
        }
        compiler::PlanDeltas::TableCounts& counts = deltas.tables[slot.table_index];
        if (w >= 0) {
          counts.hits += 1;
          stage_active = true;
          compiler::ApplyAction(plan, slot.actions[static_cast<std::size_t>(w)],
                                result.packet, result.meta);
        } else {
          counts.misses += 1;
          if (slot.has_default) {
            counts.default_hits += 1;
            compiler::ApplyAction(plan, slot.default_action, result.packet, result.meta);
          }
        }
        if (result.meta.dropped) {
          aborted = true;
          break;
        }
      }
      if (aborted) break;
    }
    if (aborted) {
      // Count the stage the drop happened in; later stages are not
      // traversed (interpreter breaks out of its stage loop).
      if (stage_active) {
        ++result.active_stages;
      } else {
        ++result.idle_stages;
      }
    } else if (current_stage < plan.num_stages) {
      result.active_stages += stage_active ? 1 : 0;
      result.idle_stages += plan.num_stages - current_stage - (stage_active ? 1 : 0);
      stage_active = false;
      current_stage = plan.num_stages;
    }

    if (result.meta.dropped) {
      if (result.meta.drop_reason == DropReason::kNone) {
        result.meta.drop_reason = DropReason::kNfAction;
      }
      deltas.AddDrop(result.meta.drop_reason);
      break;
    }
    if (!result.meta.recirculate) break;
    if (result.passes >= config_.max_passes) {
      if (config_.drop_on_recirculation_guard) {
        result.meta.dropped = true;
        result.meta.drop_reason = DropReason::kRecirculationGuard;
        deltas.AddDrop(result.meta.drop_reason);
      }
      break;
    }
    const double service_ns =
        config_.recirculation_gbps > 0.0
            ? static_cast<double>(packet.WireBytes()) * 8.0 / config_.recirculation_gbps
            : 0.0;
    if (!AdmitRecirculation(result.meta.time_ns, service_ns)) {
      result.meta.dropped = true;
      result.meta.drop_reason = DropReason::kRecirculationOverload;
      deltas.AddDrop(result.meta.drop_reason);
      break;
    }
    deltas.recirculations += 1;
    ++result.passes;
    ++result.meta.pass;
  }

  result.latency_ns = config_.timing.LatencyNs(result.active_stages, result.idle_stages,
                                               result.passes);
}

void Pipeline::AddCompiledCounts(const compiler::PlanDeltas& deltas) {
  if (deltas.packets != 0) packets_.Add(deltas.packets);
  if (deltas.recirculations != 0) recirculations_.Add(deltas.recirculations);
  if (deltas.drops != 0) drops_.Add(deltas.drops);
  if (deltas.drops_nf != 0) drops_nf_.Add(deltas.drops_nf);
  if (deltas.drops_guard != 0) drops_guard_.Add(deltas.drops_guard);
  if (deltas.drops_overload != 0) drops_overload_.Add(deltas.drops_overload);
  if (deltas.drops_injected != 0) drops_injected_.Add(deltas.drops_injected);
}

}  // namespace sfp::switchsim
