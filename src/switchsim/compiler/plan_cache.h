// Shared tenant -> CompiledPlan cache.
//
// Concurrency contract:
//  - Serve workers call Acquire(). It takes the map lock shared; on a
//    miss it TRY-locks the compile mutex — if another compile is in
//    flight the worker gets nullptr and interprets, so the serve path
//    never blocks on compilation.
//  - The control plane calls Warm() after admitting a tenant — a
//    blocking compile so the first served packet already runs compiled.
//  - DataPlane mutation hooks (and the per-packet epoch backstop in
//    ExecContext::PlanFor) call Invalidate(); the generation counter
//    bumps on every map change, which is what clears the per-worker
//    tenant -> plan memos.
//
// A tenant that fails to lift (unsupported construct) is cached as a
// nullptr entry: a permanent interpreted fallback until the next
// invalidation, not a retry per packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "switchsim/compiler/action_traits.h"
#include "switchsim/compiler/plan.h"

namespace sfp::switchsim {
class Pipeline;
}  // namespace sfp::switchsim

namespace sfp::switchsim::compiler {

class PlanCache {
 public:
  PlanCache(const Pipeline& pipeline, ActionMetadata metadata)
      : pipeline_(pipeline), metadata_(std::move(metadata)) {}

  /// Serve-path lookup. Returns the tenant's plan, or nullptr when the
  /// packet must interpret (fallback tenant, or a compile is needed and
  /// either in flight elsewhere or just kicked off here and failed).
  /// Never blocks on compilation.
  std::shared_ptr<const CompiledPlan> Acquire(std::uint16_t tenant);

  /// Blocking compile for the control plane (e.g. right after an admit
  /// installs the tenant's rules). Returns false if the tenant fell
  /// back to the interpreter; `error` (when non-null) says why.
  bool Warm(std::uint16_t tenant, std::string* error = nullptr);

  /// Drops the tenant's cached plan (or fallback marker) so the next
  /// Acquire/Warm recompiles against the mutated tables.
  void Invalidate(std::uint16_t tenant);

  /// Drops every cached plan (e.g. after the action metadata changes).
  void InvalidateAll();

  /// Map version; bumps on every insert/erase. Workers compare it to
  /// decide when their tenant -> plan memos are stale.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // compiler.* metric sources (monotonic except FallbackTenants).
  std::uint64_t PlansCompiled() const { return plans_compiled_.load(std::memory_order_relaxed); }
  std::uint64_t Recompiles() const { return recompiles_.load(std::memory_order_relaxed); }
  std::uint64_t Invalidations() const { return invalidations_.load(std::memory_order_relaxed); }
  std::uint64_t FusedStages() const { return fused_stages_.load(std::memory_order_relaxed); }
  std::uint64_t DeadTablesEliminated() const { return dead_tables_.load(std::memory_order_relaxed); }
  std::uint64_t FoldedTables() const { return folded_tables_.load(std::memory_order_relaxed); }
  /// Tenants currently marked interpreted-fallback.
  std::uint64_t FallbackTenants() const;

 private:
  /// Compile + insert with compile_mutex_ held (rechecks the map first).
  std::shared_ptr<const CompiledPlan> CompileLocked(std::uint16_t tenant,
                                                    std::string* error);

  const Pipeline& pipeline_;
  const ActionMetadata metadata_;

  /// Guards plans_, fallback_, ever_compiled_. Held shared on the serve
  /// path, unique only for brief insert/erase sections.
  mutable std::shared_mutex map_mutex_;
  std::unordered_map<std::uint16_t, std::shared_ptr<const CompiledPlan>> plans_;
  std::unordered_set<std::uint16_t> fallback_;
  std::unordered_set<std::uint16_t> ever_compiled_;

  /// Serializes compilation; serve workers only try_lock it.
  std::mutex compile_mutex_;

  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::uint64_t> plans_compiled_{0};
  std::atomic<std::uint64_t> recompiles_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> fused_stages_{0};
  std::atomic<std::uint64_t> dead_tables_{0};
  std::atomic<std::uint64_t> folded_tables_{0};
};

}  // namespace sfp::switchsim::compiler
