// Per-worker execution context for compiled plans.
//
// A batch worker owns one ExecContext for the duration of its shard.
// It memoizes tenant -> plan resolutions (so the shared PlanCache lock
// is touched once per tenant per generation, not per packet) and
// buffers all counter updates — per-table hit/miss/default and
// pipeline-level packets/drops/recirculations — as plain integers.
// Flush() applies the buffered deltas once per shard; integer sums
// commute, so totals are bit-identical to the interpreter's per-packet
// atomic bumps.
//
// The hot path is EntryFor(): ONE lookup resolves both the tenant's
// plan and this worker's delta buffer for it. Active tenants per shard
// are few, so the memo is a flat vector scanned linearly with an MRU
// fast path — no hashing, no node allocation, and the common case
// (consecutive packets of the same tenant) is a single compare.
//
// Invalidation: EntryFor revalidates the cache generation (one relaxed
// load) and the plan's table epochs per packet. A stale plan is
// reported to the cache and recompiled in place; deltas buffered
// against the stale plan are retired — kept alive and still flushed —
// so no counted work is lost.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "switchsim/compiler/plan.h"
#include "switchsim/compiler/plan_cache.h"

namespace sfp::switchsim {
class Pipeline;
}  // namespace sfp::switchsim

namespace sfp::switchsim::compiler {

/// Buffered counter deltas for one plan on one worker.
struct PlanDeltas {
  struct TableCounts {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t default_hits = 0;
  };
  /// Parallel to CompiledPlan::table_epochs.
  std::vector<TableCounts> tables;
  std::uint64_t packets = 0;
  std::uint64_t recirculations = 0;
  std::uint64_t drops = 0;
  std::uint64_t drops_nf = 0;
  std::uint64_t drops_guard = 0;
  std::uint64_t drops_overload = 0;
  std::uint64_t drops_injected = 0;

  /// Mirrors Pipeline::RecordDrop.
  void AddDrop(DropReason reason);
};

/// One batch worker's view of the plan cache (single-threaded; owned
/// and used by exactly one worker between construction and Flush).
class ExecContext {
 public:
  /// One tenant's resolved plan plus this worker's buffered deltas for
  /// it. `plan` is nullptr for interpreted-fallback tenants.
  struct Entry {
    std::uint16_t tenant = 0;
    std::shared_ptr<const CompiledPlan> plan;
    PlanDeltas deltas;
  };

  explicit ExecContext(PlanCache& cache) : cache_(cache) {}

  /// The entry to execute `tenant`'s packet with (plan + deltas in one
  /// lookup), or nullptr when the packet must take the interpreted
  /// path (no plan, a compile in flight, or a stale plan whose
  /// recompile did not land).
  Entry* EntryFor(std::uint16_t tenant) {
    const std::uint64_t generation = cache_.generation();
    if (generation != generation_) {
      RetireAll();
      generation_ = generation;
    }
    if (mru_ < entries_.size() && entries_[mru_].tenant == tenant) {
      return Check(entries_[mru_]);
    }
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].tenant == tenant) {
        mru_ = i;
        return Check(entries_[i]);
      }
    }
    return Miss(tenant);
  }

  /// The plan EntryFor would serve `tenant` with (nullptr = interpreted
  /// fallback). Inspection shim over EntryFor for tests.
  const CompiledPlan* PlanFor(std::uint16_t tenant) {
    Entry* entry = EntryFor(tenant);
    return entry != nullptr ? entry->plan.get() : nullptr;
  }

  /// Applies every buffered delta — live entries and retired ones — to
  /// the tables and the pipeline.
  void Flush(Pipeline& pipeline);

 private:
  /// Per-packet staleness check on a resolved entry; the cold stale
  /// branch recompiles in place.
  Entry* Check(Entry& entry) {
    if (entry.plan == nullptr) return nullptr;
    if (entry.plan->Validate()) return &entry;
    return Revalidate(entry);
  }

  /// Cold path: tenant not in the memo yet.
  Entry* Miss(std::uint16_t tenant);
  /// Cold path: `entry`'s table epochs went stale underneath it.
  Entry* Revalidate(Entry& entry);
  /// Moves every live entry's plan + deltas onto the retired list.
  void RetireAll();

  PlanCache& cache_;
  /// Cache generation the memo below is valid for.
  std::uint64_t generation_ = ~0ULL;
  /// Live per-tenant entries; few active tenants per shard, so a flat
  /// linear-scan vector beats a hash map on the per-packet path.
  std::vector<Entry> entries_;
  /// Index of the last entry served (fast path for runs of packets
  /// from one tenant).
  std::size_t mru_ = 0;
  /// Deltas buffered against plans that were invalidated or retired
  /// mid-batch; the shared_ptr keeps each plan's table list reachable
  /// until Flush. Partial flushes of the same plan are fine — all
  /// accumulators are exact integer sums.
  std::vector<std::pair<std::shared_ptr<const CompiledPlan>, PlanDeltas>> retired_;
};

}  // namespace sfp::switchsim::compiler
