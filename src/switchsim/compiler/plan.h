// The executable artifact of the pipeline compiler.
//
// EmitPlan lowers a pass-annotated TenantIr into flat, cache-friendly
// data the batch workers execute directly (exec.cc): per slot, the
// matched rule data is laid out struct-of-arrays — parallel op-span
// and action vectors in winner order, with the match ops themselves
// pooled plan-wide and their masks precomputed — so the hot scan
// touches contiguous words instead of chasing TableEntry vectors.
//
// A plan snapshots the mutation epoch of every table it was lifted
// from; Validate() rechecks them, which is the per-packet backstop of
// the invalidation contract (docs/COMPILER.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "switchsim/compiler/ir.h"
#include "switchsim/compiler/passes.h"

namespace sfp::switchsim::compiler {

/// One precomputed field predicate. Semantics by kind:
///   kExact:   value == a
///   kTernary: (value & b) == a          (a pre-masked)
///   kLpm:     (value & b) == a          (b = 32-bit prefix mask)
///   kRange:   a <= value && value <= b
struct CompiledOp {
  std::uint8_t field = 0;  // FieldId
  MatchKind kind = MatchKind::kExact;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// One emitted action: an inline opcode with its argument, or an index
/// into the plan's opaque callback pool.
struct CompiledAction {
  ActionTraits::Kind kind = ActionTraits::Kind::kOpaque;
  /// Set meta.recirculate after the body unless the packet dropped
  /// (inline opcodes only; opaque callbacks already carry the REC
  /// wrapper inside the registered std::function).
  bool recirculate = false;
  std::uint64_t arg0 = 0;
  std::int32_t opaque = -1;
};

/// One (stage, table) of a compiled pass.
struct CompiledSlot {
  MatchActionTable* table = nullptr;
  /// Index into CompiledPlan::table_epochs (and PlanDeltas::tables).
  std::uint32_t table_index = 0;
  std::uint16_t stage = 0;
  SlotKind kind = SlotKind::kDead;
  bool has_default = false;
  CompiledAction default_action;
  /// Struct-of-arrays over the slot's entries in winner order: entry e
  /// matches iff ops [op_begin[e], op_begin[e] + op_count[e]) all hold;
  /// the first matching entry wins and runs actions[e].
  std::vector<std::uint32_t> op_begin;
  std::vector<std::uint16_t> op_count;
  std::vector<CompiledAction> actions;
};

/// A fused extraction group: `slot_count` consecutive slots whose
/// fields are extracted once, then matched eagerly before any member's
/// action runs.
struct CompiledGroup {
  std::uint32_t slot_begin = 0;
  std::uint32_t slot_count = 0;
  /// FieldIds to extract at group entry (union of member reads).
  std::vector<std::uint8_t> extract_fields;
};

/// One recirculation pass of the compiled program.
struct CompiledPass {
  std::vector<CompiledSlot> slots;
  std::vector<CompiledGroup> groups;
};

/// An admitted tenant's compiled program.
struct CompiledPlan {
  std::uint16_t tenant = 0;
  int num_stages = 0;
  /// Indexed by meta.pass; higher pass values execute `tail`.
  std::vector<CompiledPass> passes;
  CompiledPass tail;
  /// Plan-wide op pool (spans referenced by the slots).
  std::vector<CompiledOp> ops;
  struct OpaqueAction {
    ActionFn fn;
    ActionArgs args;
  };
  std::vector<OpaqueAction> opaque_actions;
  /// Every lifted table with its epoch at compile time, program order.
  std::vector<std::pair<MatchActionTable*, std::uint64_t>> table_epochs;
  /// The pipeline's table-mutation counter (nullptr when the pipeline
  /// does not expose one, e.g. hand-built plans in tests).
  const common::metrics::RelaxedCounter* global_epoch = nullptr;
  /// Last global_epoch value at which every table_epochs entry was
  /// verified unchanged. Serve workers advance it monotonically
  /// (relaxed: re-verification is idempotent), so the per-packet
  /// Validate fast path is one relaxed load instead of one per table.
  mutable std::atomic<std::uint64_t> global_epoch_seen{0};
  PassStats stats;

  /// True while no lifted table has been mutated since compile time —
  /// checked per packet as the invalidation backstop. Fast path: if
  /// NOTHING in the pipeline mutated since the last full check, the
  /// per-table epochs cannot have changed either. The global counter
  /// is read before the per-table sweep, so a mutation racing the
  /// sweep leaves `global_epoch_seen` behind the counter and the next
  /// packet re-checks.
  bool Validate() const {
    std::uint64_t global = 0;
    if (global_epoch != nullptr) {
      global = global_epoch->Value();
      if (global == global_epoch_seen.load(std::memory_order_relaxed)) return true;
      // Pairs with the release fence in MatchActionTable::BumpEpoch:
      // every table-epoch bump ordered before the observed global
      // value is visible to the sweep below.
      std::atomic_thread_fence(std::memory_order_acquire);
    }
    for (const auto& [table, epoch] : table_epochs) {
      if (table->epoch() != epoch) return false;
    }
    if (global_epoch != nullptr) {
      global_epoch_seen.store(global, std::memory_order_relaxed);
    }
    return true;
  }
};

/// Emits the executable plan from a lowered IR (stats are carried along
/// for the plan cache's compiler.* counters).
std::shared_ptr<const CompiledPlan> EmitPlan(const TenantIr& ir, const PassStats& stats);

/// Lift + lower + emit for one tenant. Returns nullptr (and sets
/// `error` when non-null) if the tenant hits an unsupported construct
/// and must stay interpreted.
std::shared_ptr<const CompiledPlan> CompileTenant(const Pipeline& pipeline,
                                                  std::uint16_t tenant,
                                                  const ActionMetadata* metadata,
                                                  std::string* error = nullptr);

}  // namespace sfp::switchsim::compiler
