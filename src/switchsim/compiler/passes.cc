#include "switchsim/compiler/passes.h"

namespace sfp::switchsim::compiler {

namespace {

/// Applies `fn(pass, counted)` to every pass; `counted` is false for
/// the tail so stats only reflect the tenant's real program.
template <typename Fn>
void ForEachPass(TenantIr& ir, Fn&& fn) {
  for (IrPass& pass : ir.passes) fn(pass, true);
  fn(ir.tail, false);
}

}  // namespace

int DeadTableElimination(TenantIr& ir) {
  int dead = 0;
  ForEachPass(ir, [&dead](IrPass& pass, bool counted) {
    for (IrSlot& slot : pass.slots) {
      if (slot.kind != SlotKind::kMatch || !slot.entries.empty()) continue;
      slot.kind = SlotKind::kDead;
      slot.reads = kNoFields;
      if (counted) ++dead;
    }
  });
  return dead;
}

int ConstantFoldAlwaysMatch(TenantIr& ir) {
  int folded = 0;
  ForEachPass(ir, [&folded](IrPass& pass, bool counted) {
    for (IrSlot& slot : pass.slots) {
      if (slot.kind != SlotKind::kMatch || slot.entries.empty()) continue;
      if (!slot.entries.front().always_matches) continue;
      slot.kind = SlotKind::kAlways;
      // Entries below the unconditional winner are unreachable, and
      // with them goes every concrete pattern: the slot reads nothing
      // and only the winner's action can write.
      slot.entries.resize(1);
      slot.reads = kNoFields;
      slot.writes = slot.entries.front().act.traits.writes;
      if (counted) ++folded;
    }
  });
  return folded;
}

int MatchFusion(TenantIr& ir) {
  int fused = 0;
  ForEachPass(ir, [&fused](IrPass& pass, bool counted) {
    int group = -1;
    int group_size = 0;
    int group_live = 0;  // non-dead members (dead slots fuse transparently)
    FieldSet group_writes = kNoFields;
    for (IrSlot& slot : pass.slots) {
      // Safe to match this slot eagerly alongside the current group iff
      // no earlier member's action can write a field this slot reads
      // (actions still run in slot order, so write-before-write and
      // read-own-write hazards cannot arise).
      // kMaxFusedSlots caps the *live* members: only they consume a
      // winner index at execution time, so dead slots never split a
      // group. Packed multi-NF passes (DESIGN.md "Intra-chain NF
      // parallelism") rely on this to keep one extraction group per
      // recirculation pass.
      const bool join = group_size > 0 &&
                        group_live + (slot.kind != SlotKind::kDead ? 1 : 0) <=
                            kMaxFusedSlots &&
                        (slot.reads & group_writes) == kNoFields;
      if (!join) {
        ++group;
        group_size = 0;
        group_live = 0;
        group_writes = kNoFields;
      } else if (counted && slot.kind != SlotKind::kDead && group_live > 0) {
        ++fused;
      }
      slot.fusion_group = group;
      group_writes |= slot.writes;
      ++group_size;
      if (slot.kind != SlotKind::kDead) ++group_live;
    }
  });
  return fused;
}

PassStats RunLoweringPasses(TenantIr& ir) {
  PassStats stats;
  stats.dead_tables = DeadTableElimination(ir);
  stats.folded_tables = ConstantFoldAlwaysMatch(ir);
  stats.fused_stages = MatchFusion(ir);
  return stats;
}

}  // namespace sfp::switchsim::compiler
