// Per-tenant intermediate representation of the pipeline compiler.
//
// LiftTenant slices a tenant's rules out of the shared pipeline: every
// physical NF table's key carries an exact (tenant, pass) prefix, and
// exact fields cannot be wildcarded, so the entries whose prefix names
// this tenant are the *only* entries that can ever match its packets.
// The lift groups those entries by recirculation pass into a program of
// IrPass -> IrSlot (one slot per (stage, table), in pipeline order) and
// pre-sorts each slot's entries into winner order — (priority desc,
// LPM prefix score desc, install handle asc) — so "first full match
// wins" reproduces MatchActionTable's lookup semantics exactly.
//
// Lowering passes (passes.h) then annotate the IR in place; plan.h
// emits the executable CompiledPlan. See docs/COMPILER.md for the IR
// grammar and worked examples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "switchsim/compiler/action_traits.h"
#include "switchsim/table.h"

namespace sfp::switchsim {
class Pipeline;
}  // namespace sfp::switchsim

namespace sfp::switchsim::compiler {

/// Cap on slots the match-fusion pass merges into one extraction
/// group; lets the executor keep its per-group winner list on the
/// stack.
inline constexpr int kMaxFusedSlots = 16;

/// One bound action of a lifted entry (or a table default).
struct IrAction {
  ActionTraits traits;
  ActionId action = 0;
  ActionArgs args;
  /// Copy of the registered callback — the execution vehicle for
  /// Kind::kOpaque (stateful callbacks share their captured state with
  /// the interpreter, so both paths see the same NF instance).
  ActionFn fn;
  /// Registered action name (debug dumps only).
  std::string name;
};

/// One lifted rule. `matches` stays parallel to the slot's full key
/// (tenant/pass prefix included); only `payload_fields` of the slot are
/// matched at run time.
struct IrEntry {
  std::vector<FieldMatch> matches;
  int priority = 0;
  EntryHandle handle = 0;
  /// Sum of LPM prefix lengths over the key's LPM fields — the
  /// entry-static tie-break score of MatchActionTable::PrefixScore.
  int prefix_score = 0;
  /// Every payload field pattern is a full wildcard: the entry matches
  /// any packet that reaches this (tenant, pass) slot.
  bool always_matches = false;
  IrAction act;
};

/// How a slot executes after lowering.
enum class SlotKind : std::uint8_t {
  /// Match the entry list in winner order; default action on miss.
  kMatch,
  /// Constant-folded: entry 0 always wins, no matching performed.
  kAlways,
  /// Dead table: no entries for this (tenant, pass) — every packet
  /// misses (default action + miss counters only).
  kDead,
};

/// One (stage, table) of one recirculation pass, restricted to the
/// tenant's entries.
struct IrSlot {
  MatchActionTable* table = nullptr;
  int stage = 0;
  std::vector<MatchFieldSpec> key;
  /// Key indices excluding the exact (tenant, pass) prefix — the fields
  /// actually matched at run time.
  std::vector<std::size_t> payload_fields;
  /// Entries in winner order (see file header).
  std::vector<IrEntry> entries;
  std::optional<IrAction> default_act;
  SlotKind kind = SlotKind::kMatch;
  /// Fields read by at least one concrete (non-wildcard) pattern of any
  /// entry. Wildcarded fields match regardless of value, so they are
  /// not reads.
  FieldSet reads = kNoFields;
  /// Fields any reachable action (entries + default) may write.
  FieldSet writes = kNoFields;
  /// Extraction group assigned by the match-fusion pass; slots sharing
  /// a group extract their fields together and match eagerly.
  int fusion_group = -1;
};

/// One recirculation pass: every pipeline table, in (stage, table)
/// program order.
struct IrPass {
  std::vector<IrSlot> slots;
};

/// The per-tenant IR.
struct TenantIr {
  std::uint16_t tenant = 0;
  int num_stages = 0;
  /// Indexed by meta.pass; pass values beyond the vector use `tail`.
  std::vector<IrPass> passes;
  /// Shared pass for recirculation beyond the tenant's last configured
  /// pass: every slot is dead (all tables miss), matching what the
  /// interpreter does for a (tenant, pass) with no entries.
  IrPass tail;
  /// Mutation epoch of every lifted table at lift time, in program
  /// order. The emitted plan revalidates these per packet.
  std::vector<std::pair<MatchActionTable*, std::uint64_t>> table_epochs;
  /// The pipeline's table-mutation counter (Validate fast path in the
  /// emitted plan); nullptr when the pipeline does not expose one.
  const common::metrics::RelaxedCounter* global_epoch = nullptr;
};

/// Lift outcome. !ok => the tenant (and with the current data plane
/// layout, every tenant) must stay on the interpreted path.
struct LiftResult {
  bool ok = false;
  std::string error;
  TenantIr ir;
};

/// Lifts `tenant`'s rules from the pipeline's tables. `metadata` may be
/// null: all actions are then treated as opaque (correct, unoptimized).
/// Unsupported constructs — a table without the exact (tenant, pass)
/// key prefix — yield !ok.
LiftResult LiftTenant(const Pipeline& pipeline, std::uint16_t tenant,
                      const ActionMetadata* metadata);

/// Multi-line debug dump of the IR (tests and COMPILER.md examples).
std::string ToString(const TenantIr& ir);

/// Largest value GetField can produce for `field` (e.g. 0xFFFF for a
/// port). Used to recognize full-range wildcards like Range(0, 65535).
std::uint64_t FieldMaxValue(FieldId field);

/// True when `match` can never exclude a packet under `kind` (ternary
/// mask 0, LPM prefix 0, range covering the field's whole domain).
/// Exact patterns always constrain.
bool IsWildcardMatch(const FieldMatch& match, MatchKind kind, FieldId field);

}  // namespace sfp::switchsim::compiler
