#include "switchsim/compiler/plan_cache.h"

namespace sfp::switchsim::compiler {

std::shared_ptr<const CompiledPlan> PlanCache::Acquire(std::uint16_t tenant) {
  {
    std::shared_lock lock(map_mutex_);
    auto it = plans_.find(tenant);
    if (it != plans_.end()) return it->second;
  }
  std::unique_lock compile_lock(compile_mutex_, std::try_to_lock);
  if (!compile_lock.owns_lock()) return nullptr;  // compile in flight; interpret
  return CompileLocked(tenant, nullptr);
}

bool PlanCache::Warm(std::uint16_t tenant, std::string* error) {
  std::unique_lock compile_lock(compile_mutex_);
  return CompileLocked(tenant, error) != nullptr;
}

std::shared_ptr<const CompiledPlan> PlanCache::CompileLocked(std::uint16_t tenant,
                                                             std::string* error) {
  // Another thread may have compiled between our map miss and taking
  // the compile mutex.
  {
    std::shared_lock lock(map_mutex_);
    auto it = plans_.find(tenant);
    if (it != plans_.end()) return it->second;
  }
  std::string local_error;
  std::shared_ptr<const CompiledPlan> plan =
      CompileTenant(pipeline_, tenant, &metadata_, &local_error);
  if (plan == nullptr && error != nullptr) *error = local_error;
  {
    std::unique_lock lock(map_mutex_);
    if (plan != nullptr) {
      if (!ever_compiled_.insert(tenant).second) {
        recompiles_.fetch_add(1, std::memory_order_relaxed);
      }
      plans_compiled_.fetch_add(1, std::memory_order_relaxed);
      fused_stages_.fetch_add(plan->stats.fused_stages, std::memory_order_relaxed);
      dead_tables_.fetch_add(plan->stats.dead_tables, std::memory_order_relaxed);
      folded_tables_.fetch_add(plan->stats.folded_tables, std::memory_order_relaxed);
      fallback_.erase(tenant);
    } else {
      fallback_.insert(tenant);
    }
    plans_[tenant] = plan;
    generation_.fetch_add(1, std::memory_order_release);
  }
  return plan;
}

void PlanCache::Invalidate(std::uint16_t tenant) {
  std::unique_lock lock(map_mutex_);
  auto it = plans_.find(tenant);
  if (it == plans_.end()) return;
  plans_.erase(it);
  fallback_.erase(tenant);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
}

void PlanCache::InvalidateAll() {
  std::unique_lock lock(map_mutex_);
  if (plans_.empty()) return;
  invalidations_.fetch_add(plans_.size(), std::memory_order_relaxed);
  plans_.clear();
  fallback_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

std::uint64_t PlanCache::FallbackTenants() const {
  std::shared_lock lock(map_mutex_);
  return fallback_.size();
}

}  // namespace sfp::switchsim::compiler
