// Lowering passes of the pipeline compiler.
//
// Each pass is a small in-place transformation over a TenantIr; they
// run in a fixed order (RunLoweringPasses) and each is independently
// unit-tested. docs/COMPILER.md documents every pass with a worked
// before/after example — keep it in sync when adding one.
#pragma once

#include "switchsim/compiler/ir.h"

namespace sfp::switchsim::compiler {

/// What the pass pipeline did to one tenant's IR, counted over the
/// real passes (the synthesized all-dead tail is not counted).
struct PassStats {
  /// Slots with no entries for the (tenant, pass), demoted to kDead.
  int dead_tables = 0;
  /// Slots whose winner-order head always matches, demoted to kAlways.
  int folded_tables = 0;
  /// Non-dead slots that joined a predecessor's extraction group.
  int fused_stages = 0;
};

/// Pass 1 — dead-table elimination: a slot with no lifted entries can
/// never hit; demote it to kDead so the executor skips matching and
/// only accounts the miss (+ default action). Returns the demotions
/// over real passes.
int DeadTableElimination(TenantIr& ir);

/// Pass 2 — constant folding: if the first entry in winner order is a
/// full wildcard it wins for every packet, so the slot needs no
/// matching at all (kAlways) and everything it shadows is pruned.
/// Single-rule tables holding just the data plane's catch-all are the
/// common case. Returns the folds over real passes.
int ConstantFoldAlwaysMatch(TenantIr& ir);

/// Pass 3 — match fusion: consecutive slots whose match reads are
/// disjoint from every earlier group member's action writes share one
/// extraction group — their fields are extracted and matched together
/// before any of their actions run (actions still execute in slot
/// order). Groups are capped at kMaxFusedSlots. Returns the fused
/// (joined, non-dead) slot count over real passes.
int MatchFusion(TenantIr& ir);

/// Runs all passes in order and returns their combined stats.
PassStats RunLoweringPasses(TenantIr& ir);

}  // namespace sfp::switchsim::compiler
