// Action metadata consumed by the pipeline compiler and the data
// plane's pass packer.
//
// The compiler specializes a tenant's tables into straight-line match
// code, so it must know what each registered action *does* without
// peeking inside its std::function: which match-relevant fields it may
// read or write (for the match-fusion pass and the dependency-aware
// pass packer, DESIGN.md "Intra-chain NF parallelism"), whether it can
// drop, whether it mutates NF-instance state, and whether it has an
// inline opcode the executor can dispatch without the std::function
// call. NF implementations declare these traits
// (NetworkFunction::TraitsOf); DataPlane aggregates them per table into
// an ActionMetadata when compiled plans are enabled, and per logical NF
// into NfEffects (dataplane/nf_deps.h) when pass packing is enabled.
//
// Traits are an optimization contract, not a correctness one: an action
// with no traits (or whose args don't fit its inline opcode) compiles
// to Kind::kOpaque — the executor calls the registered callback, which
// is always exact — with maximally conservative reads/writes/may_drop/
// stateful, so fusion, folding and pass packing simply stay out of its
// way.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "switchsim/table.h"
#include "switchsim/types.h"

namespace sfp::switchsim::compiler {

/// Number of FieldId enumerators (kTenantId .. kEthType).
inline constexpr unsigned kNumFields = 10;

/// Bitmask over FieldId plus the virtual effect bits below. The low
/// kNumFields bits are the match-relevant fields; higher bits name
/// observable packet/metadata state that no table can match on but
/// that actions still read or write (the pass packer must order
/// around them; match fusion ignores them since no key reads them).
using FieldSet = std::uint32_t;

constexpr FieldSet FieldBit(FieldId field) {
  return FieldSet{1} << static_cast<unsigned>(field);
}

inline constexpr FieldSet kNoFields = 0;
inline constexpr FieldSet kAllFields = (FieldSet{1} << kNumFields) - 1;

/// Virtual effect bits: observable action effects outside the
/// matchable field space. kEgressPort and kScratch live in PacketMeta,
/// kTtl in the packet bytes; all three are visible in ProcessResult,
/// so reordering an action that writes one past an action that reads
/// (or also writes) it would be observable.
inline constexpr FieldSet kEffectEgressPort = FieldSet{1} << kNumFields;
inline constexpr FieldSet kEffectScratch = FieldSet{1} << (kNumFields + 1);
inline constexpr FieldSet kEffectTtl = FieldSet{1} << (kNumFields + 2);
inline constexpr FieldSet kAllEffects = kEffectEgressPort | kEffectScratch | kEffectTtl;

/// Conservative "may touch anything" mask (fields + effects).
inline constexpr FieldSet kAllState = kAllFields | kAllEffects;

/// What the compiler may assume about one registered action.
struct ActionTraits {
  /// Inline opcodes the executor dispatches without the std::function.
  /// Each mirrors one NF action body bit for bit (see exec.cc):
  ///   kNoop          — no effect (firewall allow, the data plane's
  ///                    per-NF "noop" default).
  ///   kDrop          — meta.dropped = true (firewall deny).
  ///   kSetFlowClass  — meta.flow_class = arg0 (classifier set_class).
  ///   kRoute         — meta.egress_port = arg0; TTL decrement with
  ///                    drop at zero (router route).
  ///   kSetBackend    — ipv4.dst = arg0; meta.scratch = arg0
  ///                    (load-balancer set_backend).
  ///   kSetSrcIp      — ipv4.src = arg0 (NAT rewrite_src).
  ///   kOpaque        — call the registered callback (stateful actions
  ///                    such as police/pool_select, and anything
  ///                    without declared traits).
  enum class Kind : std::uint8_t {
    kOpaque = 0,
    kNoop,
    kDrop,
    kSetFlowClass,
    kRoute,
    kSetBackend,
    kSetSrcIp,
  };

  Kind kind = Kind::kOpaque;
  /// Fields and effects the action may write. The default is
  /// everything: an undeclared action blocks fusion and packing
  /// across it.
  FieldSet writes = kAllState;
  bool may_drop = true;
  /// True for the data plane's "_rec" variants: after the action body,
  /// request recirculation unless the packet dropped (the REC wrapper
  /// of RegisterWithRecVariant). Set by DataPlane, not by the NF.
  bool recirculate = false;
  /// Fields and effects the action body reads (match-key reads are
  /// accounted separately, from the installed rules' concrete
  /// patterns — see dataplane/nf_deps.cc).
  FieldSet reads = kAllState;
  /// True when the action mutates NF-instance state (rate-limiter
  /// token buckets): its outcome depends on which packets reached it
  /// before, so it must not be reordered relative to any action that
  /// can drop (DESIGN.md, "Intra-chain NF parallelism").
  bool stateful = true;

  static ActionTraits Opaque(FieldSet writes = kAllState, bool may_drop = true,
                             FieldSet reads = kAllState, bool stateful = true) {
    return {Kind::kOpaque, writes, may_drop, false, reads, stateful};
  }
  static ActionTraits Noop() {
    return {Kind::kNoop, kNoFields, false, false, kNoFields, false};
  }
  static ActionTraits Drop() {
    return {Kind::kDrop, kNoFields, true, false, kNoFields, false};
  }
  static ActionTraits SetFlowClass() {
    return {Kind::kSetFlowClass, FieldBit(FieldId::kFlowClass), false, false, kNoFields,
            false};
  }
  static ActionTraits Route() {
    // Writes the egress port and decrements TTL (reading it first);
    // drops at TTL zero.
    return {Kind::kRoute, kEffectEgressPort | kEffectTtl, true, false, kEffectTtl, false};
  }
  static ActionTraits SetBackend() {
    return {Kind::kSetBackend, FieldBit(FieldId::kDstIp) | kEffectScratch, false, false,
            kNoFields, false};
  }
  static ActionTraits SetSrcIp() {
    return {Kind::kSetSrcIp, FieldBit(FieldId::kSrcIp), false, false, kNoFields, false};
  }
};

/// Per-table action traits, indexed by ActionId. Built by
/// DataPlane::EnableCompiledPlans from the NF library's declarations;
/// tables absent here (hand-built pipelines, tables added after
/// enabling) compile with all actions opaque.
struct ActionMetadata {
  std::unordered_map<const MatchActionTable*, std::vector<ActionTraits>> tables;

  const ActionTraits* Find(const MatchActionTable* table, ActionId action) const {
    const auto it = tables.find(table);
    if (it == tables.end()) return nullptr;
    const auto index = static_cast<std::size_t>(action);
    if (action < 0 || index >= it->second.size()) return nullptr;
    return &it->second[index];
  }
};

}  // namespace sfp::switchsim::compiler
