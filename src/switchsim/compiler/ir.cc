#include "switchsim/compiler/ir.h"

#include <algorithm>
#include <sstream>

#include "switchsim/pipeline.h"

namespace sfp::switchsim::compiler {

namespace {

constexpr std::size_t kNoField = static_cast<std::size_t>(-1);

/// Matches MatchActionTable::PrefixScore: sum of LPM prefix lengths
/// over the key's LPM fields.
int PrefixScoreOf(const std::vector<MatchFieldSpec>& key,
                  const std::vector<FieldMatch>& matches) {
  int score = 0;
  for (std::size_t f = 0; f < key.size(); ++f) {
    if (key[f].kind == MatchKind::kLpm) score += matches[f].prefix_len;
  }
  return score;
}

/// A lifted table before it is split into per-pass slots.
struct RawTable {
  MatchActionTable* table = nullptr;
  int stage = 0;
  MatchActionTable::CompileSnapshot snap;
  std::size_t tenant_field = kNoField;
  std::size_t pass_field = kNoField;
  std::vector<std::size_t> payload_fields;
};

IrAction MakeAction(const RawTable& rt, ActionId id, const ActionArgs& args,
                    const ActionMetadata* metadata) {
  IrAction act;
  act.action = id;
  act.args = args;
  act.fn = rt.snap.actions[static_cast<std::size_t>(id)];
  act.name = rt.snap.action_names[static_cast<std::size_t>(id)];
  if (const ActionTraits* traits =
          metadata != nullptr ? metadata->Find(rt.table, id) : nullptr) {
    act.traits = *traits;
  }
  return act;
}

/// Builds the slot for one (table, pass); `pass` empty builds the tail
/// form (no entries: every packet misses).
IrSlot BuildSlot(const RawTable& rt, std::uint16_t tenant,
                 std::optional<std::uint64_t> pass, const ActionMetadata* metadata) {
  IrSlot slot;
  slot.table = rt.table;
  slot.stage = rt.stage;
  slot.key = rt.table->key();
  slot.payload_fields = rt.payload_fields;
  if (rt.snap.default_action) {
    slot.default_act = MakeAction(rt, rt.snap.default_action->first,
                                  rt.snap.default_action->second, metadata);
    slot.writes |= slot.default_act->traits.writes;
  }
  if (pass) {
    for (const TableEntry& entry : rt.snap.entries) {
      if (entry.matches[rt.tenant_field].value != tenant) continue;
      if (entry.matches[rt.pass_field].value != *pass) continue;
      IrEntry ie;
      ie.matches = entry.matches;
      ie.priority = entry.priority;
      ie.handle = entry.handle;
      ie.prefix_score = PrefixScoreOf(slot.key, entry.matches);
      ie.always_matches = true;
      for (const std::size_t f : slot.payload_fields) {
        if (!IsWildcardMatch(entry.matches[f], slot.key[f].kind, slot.key[f].field)) {
          ie.always_matches = false;
          slot.reads |= FieldBit(slot.key[f].field);
        }
      }
      ie.act = MakeAction(rt, entry.action, entry.args, metadata);
      slot.writes |= ie.act.traits.writes;
      slot.entries.push_back(std::move(ie));
    }
    std::sort(slot.entries.begin(), slot.entries.end(),
              [](const IrEntry& a, const IrEntry& b) {
                if (a.priority != b.priority) return a.priority > b.priority;
                if (a.prefix_score != b.prefix_score) return a.prefix_score > b.prefix_score;
                return a.handle < b.handle;
              });
  }
  return slot;
}

}  // namespace

std::uint64_t FieldMaxValue(FieldId field) {
  switch (field) {
    case FieldId::kSrcIp:
    case FieldId::kDstIp:
      return 0xFFFFFFFFULL;
    case FieldId::kTenantId:
    case FieldId::kSrcPort:
    case FieldId::kDstPort:
    case FieldId::kEthType:
      return 0xFFFFULL;
    case FieldId::kPass:
    case FieldId::kIpProto:
    case FieldId::kDscp:
    case FieldId::kFlowClass:
      return 0xFFULL;
  }
  return ~0ULL;
}

bool IsWildcardMatch(const FieldMatch& match, MatchKind kind, FieldId field) {
  switch (kind) {
    case MatchKind::kExact:
      // mask == 0 is FieldMatch::Any(): even exact-kind fields can be
      // wildcarded (per-pass catch-alls on exact-key NFs).
      return match.mask == 0;
    case MatchKind::kTernary:
      return match.mask == 0;
    case MatchKind::kLpm:
      return match.prefix_len == 0;
    case MatchKind::kRange:
      return match.lo == 0 && match.hi >= FieldMaxValue(field);
  }
  return false;
}

LiftResult LiftTenant(const Pipeline& pipeline, std::uint16_t tenant,
                      const ActionMetadata* metadata) {
  LiftResult out;
  TenantIr& ir = out.ir;
  ir.tenant = tenant;
  ir.num_stages = pipeline.num_stages();
  ir.global_epoch = pipeline.table_mutation_epoch();

  std::vector<RawTable> raw;
  for (int k = 0; k < ir.num_stages; ++k) {
    for (const auto& table : pipeline.stage(k).tables()) {
      RawTable rt;
      rt.table = table.get();
      rt.stage = k;
      rt.snap = table->Snapshot();
      const auto& key = table->key();
      for (std::size_t f = 0; f < key.size(); ++f) {
        const bool exact = key[f].kind == MatchKind::kExact;
        if (exact && key[f].field == FieldId::kTenantId && rt.tenant_field == kNoField) {
          rt.tenant_field = f;
        } else if (exact && key[f].field == FieldId::kPass && rt.pass_field == kNoField) {
          rt.pass_field = f;
        } else {
          rt.payload_fields.push_back(f);
        }
      }
      if (rt.tenant_field == kNoField || rt.pass_field == kNoField) {
        // Without the exact (tenant, pass) prefix the table cannot be
        // sliced per tenant: another tenant's entries could match this
        // tenant's packets. Unsupported construct -> interpreted path.
        out.error = "table '" + table->name() + "' lacks the exact (tenant, pass) key prefix";
        return out;
      }
      ir.table_epochs.emplace_back(rt.table, rt.snap.epoch);
      raw.push_back(std::move(rt));
    }
  }

  // The tenant's pass count: one past the highest pass any of its
  // entries names. Entries beyond the recirculation guard (or the
  // uint8 pass counter) are unreachable and lift into no pass.
  const auto guard = static_cast<std::uint64_t>(pipeline.config().max_passes);
  std::uint64_t num_passes = 1;
  for (const RawTable& rt : raw) {
    for (const TableEntry& entry : rt.snap.entries) {
      if (entry.matches[rt.tenant_field].value != tenant) continue;
      const std::uint64_t pass = entry.matches[rt.pass_field].value;
      if (pass < guard && pass < 256) num_passes = std::max(num_passes, pass + 1);
    }
  }

  for (std::uint64_t pass = 0; pass < num_passes; ++pass) {
    IrPass ir_pass;
    for (const RawTable& rt : raw) {
      ir_pass.slots.push_back(BuildSlot(rt, tenant, pass, metadata));
    }
    ir.passes.push_back(std::move(ir_pass));
  }
  for (const RawTable& rt : raw) {
    ir.tail.slots.push_back(BuildSlot(rt, tenant, std::nullopt, metadata));
  }
  out.ok = true;
  return out;
}

namespace {

const char* SlotKindName(SlotKind kind) {
  switch (kind) {
    case SlotKind::kMatch:
      return "match";
    case SlotKind::kAlways:
      return "always";
    case SlotKind::kDead:
      return "dead";
  }
  return "?";
}

void DumpPass(std::ostringstream& os, const IrPass& pass) {
  for (const IrSlot& slot : pass.slots) {
    os << "  s" << slot.stage << " " << slot.table->name() << " [" << SlotKindName(slot.kind)
       << " group=" << slot.fusion_group << "]";
    for (const IrEntry& entry : slot.entries) {
      os << " {" << entry.act.name << " prio=" << entry.priority << " h=" << entry.handle;
      if (entry.always_matches) os << " always";
      os << "}";
    }
    os << "\n";
  }
}

}  // namespace

std::string ToString(const TenantIr& ir) {
  std::ostringstream os;
  os << "tenant " << ir.tenant << " passes=" << ir.passes.size() << "\n";
  for (std::size_t p = 0; p < ir.passes.size(); ++p) {
    os << "pass " << p << ":\n";
    DumpPass(os, ir.passes[p]);
  }
  os << "tail:\n";
  DumpPass(os, ir.tail);
  return os.str();
}

}  // namespace sfp::switchsim::compiler
