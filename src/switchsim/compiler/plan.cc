#include "switchsim/compiler/plan.h"

#include <unordered_map>

#include "common/check.h"

namespace sfp::switchsim::compiler {

namespace {

/// 32-bit prefix mask, mirroring FieldMatches' LPM arithmetic.
std::uint64_t LpmMask(int prefix_len) {
  if (prefix_len >= 32) return 0xFFFFFFFFULL;
  return (0xFFFFFFFFULL << (32 - prefix_len)) & 0xFFFFFFFFULL;
}

CompiledAction CompileAction(const IrAction& act, CompiledPlan& plan) {
  CompiledAction out;
  bool inline_ok = false;
  switch (act.traits.kind) {
    case ActionTraits::Kind::kNoop:
    case ActionTraits::Kind::kDrop:
      inline_ok = true;
      break;
    case ActionTraits::Kind::kSetFlowClass:
    case ActionTraits::Kind::kRoute:
    case ActionTraits::Kind::kSetBackend:
    case ActionTraits::Kind::kSetSrcIp:
      // The inline opcode hard-codes the single-argument form; anything
      // else runs the registered callback so arg checks fire exactly as
      // interpreted.
      inline_ok = act.args.size() == 1;
      if (inline_ok) out.arg0 = act.args[0];
      break;
    case ActionTraits::Kind::kOpaque:
      break;
  }
  if (inline_ok) {
    out.kind = act.traits.kind;
    out.recirculate = act.traits.recirculate;
  } else {
    out.kind = ActionTraits::Kind::kOpaque;
    out.opaque = static_cast<std::int32_t>(plan.opaque_actions.size());
    plan.opaque_actions.push_back({act.fn, act.args});
    // The registered callback is the full action — including any REC
    // wrapper — so the executor must not re-apply recirculation.
    out.recirculate = false;
  }
  return out;
}

void EmitPass(const IrPass& ir_pass, CompiledPlan& plan,
              const std::unordered_map<const MatchActionTable*, std::uint32_t>& table_index,
              CompiledPass& out) {
  for (const IrSlot& ir_slot : ir_pass.slots) {
    CompiledSlot slot;
    slot.table = ir_slot.table;
    slot.table_index = table_index.at(ir_slot.table);
    slot.stage = static_cast<std::uint16_t>(ir_slot.stage);
    slot.kind = ir_slot.kind;
    if (ir_slot.default_act) {
      slot.has_default = true;
      slot.default_action = CompileAction(*ir_slot.default_act, plan);
    }
    for (const IrEntry& entry : ir_slot.entries) {
      const auto begin = static_cast<std::uint32_t>(plan.ops.size());
      if (ir_slot.kind == SlotKind::kMatch) {
        for (const std::size_t f : ir_slot.payload_fields) {
          const FieldMatch& m = entry.matches[f];
          const MatchKind kind = ir_slot.key[f].kind;
          if (IsWildcardMatch(m, kind, ir_slot.key[f].field)) continue;
          CompiledOp op;
          op.field = static_cast<std::uint8_t>(ir_slot.key[f].field);
          op.kind = kind;
          switch (kind) {
            case MatchKind::kExact:
              op.a = m.value;
              break;
            case MatchKind::kTernary:
              op.a = m.value & m.mask;
              op.b = m.mask;
              break;
            case MatchKind::kLpm:
              op.b = LpmMask(m.prefix_len);
              op.a = m.value & op.b;
              break;
            case MatchKind::kRange:
              op.a = m.lo;
              op.b = m.hi;
              break;
          }
          plan.ops.push_back(op);
        }
      }
      // kAlways: the winner fires without matching, so no ops emitted.
      slot.op_begin.push_back(begin);
      slot.op_count.push_back(static_cast<std::uint16_t>(plan.ops.size() - begin));
      slot.actions.push_back(CompileAction(entry.act, plan));
    }
    out.slots.push_back(std::move(slot));
  }

  // Extraction groups from the fusion pass's annotations: consecutive
  // slots sharing a fusion_group id.
  std::size_t begin = 0;
  while (begin < ir_pass.slots.size()) {
    std::size_t end = begin + 1;
    while (end < ir_pass.slots.size() &&
           ir_pass.slots[end].fusion_group == ir_pass.slots[begin].fusion_group) {
      ++end;
    }
    CompiledGroup group;
    group.slot_begin = static_cast<std::uint32_t>(begin);
    group.slot_count = static_cast<std::uint32_t>(end - begin);
    FieldSet reads = kNoFields;
    for (std::size_t s = begin; s < end; ++s) reads |= ir_pass.slots[s].reads;
    for (unsigned f = 0; f < kNumFields; ++f) {
      if ((reads & (FieldSet{1} << f)) != 0) {
        group.extract_fields.push_back(static_cast<std::uint8_t>(f));
      }
    }
    out.groups.push_back(std::move(group));
    begin = end;
  }
}

}  // namespace

std::shared_ptr<const CompiledPlan> EmitPlan(const TenantIr& ir, const PassStats& stats) {
  auto plan = std::make_shared<CompiledPlan>();
  plan->tenant = ir.tenant;
  plan->num_stages = ir.num_stages;
  plan->table_epochs = ir.table_epochs;
  plan->global_epoch = ir.global_epoch;
  plan->stats = stats;

  std::unordered_map<const MatchActionTable*, std::uint32_t> table_index;
  for (std::size_t i = 0; i < ir.table_epochs.size(); ++i) {
    table_index.emplace(ir.table_epochs[i].first, static_cast<std::uint32_t>(i));
  }

  for (const IrPass& ir_pass : ir.passes) {
    CompiledPass pass;
    EmitPass(ir_pass, *plan, table_index, pass);
    plan->passes.push_back(std::move(pass));
  }
  EmitPass(ir.tail, *plan, table_index, plan->tail);
  return plan;
}

std::shared_ptr<const CompiledPlan> CompileTenant(const Pipeline& pipeline,
                                                  std::uint16_t tenant,
                                                  const ActionMetadata* metadata,
                                                  std::string* error) {
  LiftResult lifted = LiftTenant(pipeline, tenant, metadata);
  if (!lifted.ok) {
    if (error != nullptr) *error = std::move(lifted.error);
    return nullptr;
  }
  const PassStats stats = RunLoweringPasses(lifted.ir);
  return EmitPlan(lifted.ir, stats);
}

}  // namespace sfp::switchsim::compiler
