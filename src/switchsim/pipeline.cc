#include "switchsim/pipeline.h"

#include <algorithm>

#include "common/check.h"
#include "common/faultinject.h"
#include "common/units.h"
#include "switchsim/compiler/exec.h"
#include "switchsim/compiler/plan_cache.h"

namespace sfp::switchsim {

Stage::Stage(int index, const SwitchConfig& config)
    : index_(index),
      blocks_per_stage_(config.blocks_per_stage),
      entries_per_block_(config.entries_per_block) {}

MatchActionTable* Stage::AddTable(std::string name, std::vector<MatchFieldSpec> key) {
  // Every table reserves at least one block (§V-A: "each physical NF
  // would reserve a piece of memory").
  if (BlocksUsed() + 1 > blocks_per_stage_) return nullptr;
  tables_.push_back(std::make_unique<MatchActionTable>(std::move(name), std::move(key)));
  tables_.back()->SetSharedEpoch(shared_epoch_);
  return tables_.back().get();
}

void Stage::SetSharedEpoch(common::metrics::RelaxedCounter* shared) {
  shared_epoch_ = shared;
  for (auto& table : tables_) table->SetSharedEpoch(shared);
}

bool Stage::RemoveTable(const std::string& name) {
  const std::size_t before = tables_.size();
  std::erase_if(tables_, [&name](const auto& t) { return t->name() == name; });
  return tables_.size() != before;
}

MatchActionTable* Stage::FindTable(const std::string& name) {
  for (auto& table : tables_) {
    if (table->name() == name) return table.get();
  }
  return nullptr;
}

const MatchActionTable* Stage::FindTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) return table.get();
  }
  return nullptr;
}

int Stage::BlocksUsed() const {
  int blocks = 0;
  for (const auto& table : tables_) {
    blocks += static_cast<int>(std::max<std::int64_t>(
        1, CeilDiv(static_cast<std::int64_t>(table->num_entries()), entries_per_block_)));
  }
  return blocks;
}

std::int64_t Stage::EntriesUsed() const {
  std::int64_t entries = 0;
  for (const auto& table : tables_) {
    entries += static_cast<std::int64_t>(table->num_entries());
  }
  return entries;
}

bool Stage::CanAddEntry(const MatchActionTable& table) const {
  return CanAddEntries(table, 1);
}

bool Stage::CanAddEntries(const MatchActionTable& table, std::int64_t count) const {
  const std::int64_t entries = static_cast<std::int64_t>(table.num_entries()) + count;
  const int new_blocks =
      static_cast<int>(std::max<std::int64_t>(1, CeilDiv(entries, entries_per_block_)));
  const int current_blocks = static_cast<int>(std::max<std::int64_t>(
      1, CeilDiv(static_cast<std::int64_t>(table.num_entries()), entries_per_block_)));
  return BlocksUsed() - current_blocks + new_blocks <= blocks_per_stage_;
}

Pipeline::Pipeline(SwitchConfig config) : config_(config) {
  SFP_CHECK_GT(config_.num_stages, 0);
  SFP_CHECK_GT(config_.blocks_per_stage, 0);
  SFP_CHECK_GT(config_.entries_per_block, 0);
  stages_.reserve(static_cast<std::size_t>(config_.num_stages));
  for (int k = 0; k < config_.num_stages; ++k) {
    stages_.emplace_back(k, config_);
    stages_.back().SetSharedEpoch(&table_mutations_);
  }
}

Stage& Pipeline::stage(int k) {
  SFP_CHECK_GE(k, 0);
  SFP_CHECK_LT(k, num_stages());
  return stages_[static_cast<std::size_t>(k)];
}

const Stage& Pipeline::stage(int k) const {
  SFP_CHECK_GE(k, 0);
  SFP_CHECK_LT(k, num_stages());
  return stages_[static_cast<std::size_t>(k)];
}

ProcessResult Pipeline::Process(const net::Packet& packet) {
  ProcessResult result;
  ProcessOne(packet, result);
  return result;
}

void Pipeline::RecordDrop(DropReason reason) {
  drops_.Add(1);
  switch (reason) {
    case DropReason::kNone:
    case DropReason::kNfAction:
      drops_nf_.Add(1);
      break;
    case DropReason::kRecirculationGuard:
      drops_guard_.Add(1);
      break;
    case DropReason::kRecirculationOverload:
      drops_overload_.Add(1);
      break;
    case DropReason::kInjectedFault:
      drops_injected_.Add(1);
      break;
  }
}

std::uint64_t Pipeline::packets_dropped_by(DropReason reason) const {
  switch (reason) {
    case DropReason::kNone:
      return 0;
    case DropReason::kNfAction:
      return drops_nf_.Value();
    case DropReason::kRecirculationGuard:
      return drops_guard_.Value();
    case DropReason::kRecirculationOverload:
      return drops_overload_.Value();
    case DropReason::kInjectedFault:
      return drops_injected_.Value();
  }
  return 0;
}

bool Pipeline::AdmitRecirculation(double now_ns, double service_ns) {
  if (config_.recirculation_gbps <= 0.0) return true;
  double busy = recirc_busy_until_ns_.Value();
  for (;;) {
    const double start_ns = std::max(now_ns, busy);
    if (start_ns - now_ns > config_.recirculation_queue_ns) return false;
    if (recirc_busy_until_ns_.CompareExchange(busy, start_ns + service_ns)) return true;
  }
}

void Pipeline::EnableCompiler(compiler::ActionMetadata metadata) {
  plan_cache_ = std::make_shared<compiler::PlanCache>(*this, std::move(metadata));
}

void Pipeline::DisableCompiler() { plan_cache_.reset(); }

void Pipeline::ProcessOne(const net::Packet& packet, ProcessResult& result,
                          FlowDecisionCache* cache, compiler::ExecContext* exec) {
  if (exec != nullptr) {
    if (compiler::ExecContext::Entry* entry = exec->EntryFor(packet.TenantId())) {
      ExecuteCompiled(*entry->plan, packet, entry->deltas, result);
      return;
    }
    // No valid plan (fallback tenant, compile in flight, or stale
    // epoch): interpret this packet.
  }
  result.packet = packet;
  PacketMeta meta;
  meta.tenant_id = packet.TenantId();
  meta.time_ns = packet.ingress_time_ns;
  result.meta = meta;
  result.passes = 1;
  result.active_stages = 0;
  result.idle_stages = 0;
  result.latency_ns = 0.0;
  result.parse_error = false;
  packets_.Add(1);

  if (SFP_FAULT("switchsim.pipeline.serve")) {
    result.meta.dropped = true;
    result.meta.drop_reason = DropReason::kInjectedFault;
    RecordDrop(result.meta.drop_reason);
    result.latency_ns = config_.timing.LatencyNs(0, 0, result.passes);
    return;
  }

  for (;;) {
    result.meta.recirculate = false;
    for (auto& stage : stages_) {
      bool active = false;
      for (auto& table : stage.tables()) {
        active |= table->Apply(result.packet, result.meta, cache);
        if (result.meta.dropped) break;
      }
      if (active) {
        ++result.active_stages;
      } else {
        ++result.idle_stages;
      }
      if (result.meta.dropped) break;
    }
    if (result.meta.dropped) {
      if (result.meta.drop_reason == DropReason::kNone) {
        result.meta.drop_reason = DropReason::kNfAction;
      }
      RecordDrop(result.meta.drop_reason);
      break;
    }
    if (!result.meta.recirculate) break;
    if (result.passes >= config_.max_passes) {
      // A packet still asking to recirculate at the pass limit cannot
      // complete its chain; optionally fail stop instead of forwarding
      // a half-processed packet.
      if (config_.drop_on_recirculation_guard) {
        result.meta.dropped = true;
        result.meta.drop_reason = DropReason::kRecirculationGuard;
        RecordDrop(result.meta.drop_reason);
      }
      break;
    }
    // Recirculated traffic competes for the finite recirculation port.
    const double service_ns =
        config_.recirculation_gbps > 0.0
            ? static_cast<double>(packet.WireBytes()) * 8.0 / config_.recirculation_gbps
            : 0.0;
    if (!AdmitRecirculation(result.meta.time_ns, service_ns)) {
      result.meta.dropped = true;
      result.meta.drop_reason = DropReason::kRecirculationOverload;
      RecordDrop(result.meta.drop_reason);
      break;
    }
    recirculations_.Add(1);
    ++result.passes;
    ++result.meta.pass;
  }

  result.latency_ns = config_.timing.LatencyNs(result.active_stages, result.idle_stages,
                                               result.passes);
}

namespace {

/// Shard choice for a packet: flow-affine (5-tuple hash) with the
/// tenant mixed in so flow-less traffic still spreads by tenant.
std::size_t FlowShard(const net::Packet& packet, std::size_t shards) {
  std::uint64_t hash = packet.Tuple().Hash();
  hash ^= (static_cast<std::uint64_t>(packet.TenantId()) + 1) * 0x9e3779b97f4a7c15ULL;
  return hash % shards;
}

}  // namespace

std::vector<ProcessResult> Pipeline::ProcessBatch(std::span<const net::Packet> packets,
                                                  const BatchOptions& options) {
  std::vector<ProcessResult> results(packets.size());
  ProcessBatchInto(packets, results, options);
  return results;
}

void Pipeline::ProcessBatchInto(std::span<const net::Packet> packets,
                                std::span<ProcessResult> results,
                                const BatchOptions& options) {
  SFP_CHECK_GE(results.size(), packets.size());
  if (packets.empty()) return;
  batches_.Add(1);

  const int shards =
      options.num_threads > 0 ? options.num_threads : common::DefaultParallelism();
  // Each worker owns a private flow decision cache for the duration of
  // the call; caches are merged into pipeline.cache.* afterwards.
  const bool use_cache = options.flow_cache_slots > 0;
  auto merge_cache = [this](const FlowDecisionCache& cache) {
    cache_hits_.Add(cache.hits());
    cache_misses_.Add(cache.misses());
    cache_evictions_.Add(cache.evictions());
  };
  // Pin the plan cache for the whole batch so a concurrent
  // DisableCompiler cannot free it under an in-flight worker.
  const std::shared_ptr<compiler::PlanCache> plan_cache = plan_cache_;
  if (shards <= 1 || static_cast<int>(packets.size()) < options.min_parallel_batch) {
    FlowDecisionCache cache(use_cache ? static_cast<std::size_t>(options.flow_cache_slots)
                                      : 16);
    FlowDecisionCache* cache_ptr = use_cache ? &cache : nullptr;
    std::optional<compiler::ExecContext> exec;
    if (plan_cache != nullptr) exec.emplace(*plan_cache);
    if (!options.result_sink) {
      for (std::size_t i = 0; i < packets.size(); ++i) {
        ProcessOne(packets[i], results[i], cache_ptr, exec ? &*exec : nullptr);
      }
    } else {
      // Sink in cache-sized chunks: the sink re-reads each result it is
      // handed, so running it while the chunk is still resident beats
      // one full-batch pass over results that have long been evicted.
      // The sink contract (BatchOptions) explicitly permits multiple
      // invocations with disjoint index sets.
      constexpr std::size_t kSinkChunk = 512;
      std::vector<std::uint32_t> all(packets.size());
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<std::uint32_t>(i);
      for (std::size_t begin = 0; begin < packets.size(); begin += kSinkChunk) {
        const std::size_t end = std::min(begin + kSinkChunk, packets.size());
        for (std::size_t i = begin; i < end; ++i) {
          ProcessOne(packets[i], results[i], cache_ptr, exec ? &*exec : nullptr);
        }
        options.result_sink(
            std::span<const std::uint32_t>(all.data() + begin, end - begin),
            results.first(packets.size()));
      }
    }
    if (exec) exec->Flush(*this);
    if (use_cache) merge_cache(cache);
    return;
  }

  // Bucket packet indices by flow shard. Each shard keeps its indices
  // in batch order, so per-flow order survives the fan-out; writing
  // results[i] re-establishes input order on the way back.
  std::vector<std::vector<std::uint32_t>> shard_indices(static_cast<std::size_t>(shards));
  for (auto& indices : shard_indices) {
    indices.reserve(packets.size() / static_cast<std::size_t>(shards) + 1);
  }
  for (std::size_t i = 0; i < packets.size(); ++i) {
    shard_indices[FlowShard(packets[i], static_cast<std::size_t>(shards))].push_back(
        static_cast<std::uint32_t>(i));
  }

  auto& pool = options.pool != nullptr ? *options.pool : common::WorkerPool::Shared();
  pool.ParallelFor(shards, [&](int shard) {
    FlowDecisionCache cache(use_cache ? static_cast<std::size_t>(options.flow_cache_slots)
                                      : 16);
    FlowDecisionCache* cache_ptr = use_cache ? &cache : nullptr;
    std::optional<compiler::ExecContext> exec;
    if (plan_cache != nullptr) exec.emplace(*plan_cache);
    const auto& indices = shard_indices[static_cast<std::size_t>(shard)];
    for (const std::uint32_t index : indices) {
      ProcessOne(packets[index], results[index], cache_ptr, exec ? &*exec : nullptr);
    }
    if (exec) exec->Flush(*this);
    if (use_cache) merge_cache(cache);
    // Fused accounting: the sink runs here, on the worker, while other
    // shards are still serving — no serial post-pass on the caller.
    if (options.result_sink) options.result_sink(indices, results.first(packets.size()));
  });
}

void Pipeline::RecordPassPacking(const PassPackingStats& stats) {
  if (stats.sequential != 0) passes_sequential_.Add(stats.sequential);
  if (stats.packed != 0) passes_packed_.Add(stats.packed);
  if (stats.reject_field_conflict != 0) {
    pack_reject_conflict_.Add(stats.reject_field_conflict);
  }
  if (stats.reject_drop_gate != 0) pack_reject_gate_.Add(stats.reject_drop_gate);
  if (stats.fallback_sequential != 0) pack_fallback_.Add(stats.fallback_sequential);
  if (stats.xt_allocations != 0) xt_allocations_.Add(stats.xt_allocations);
  if (stats.xt_windows_opened != 0) xt_windows_opened_.Add(stats.xt_windows_opened);
  if (stats.xt_windows_joined != 0) xt_windows_joined_.Add(stats.xt_windows_joined);
  if (stats.xt_fallback != 0) xt_fallback_.Add(stats.xt_fallback);
}

void Pipeline::RecordXtCompaction(std::uint64_t passes_saved) {
  xt_compactions_.Add(1);
  if (passes_saved != 0) xt_compaction_saved_.Add(passes_saved);
}

Pipeline::PassPackingStats Pipeline::pass_packing() const {
  PassPackingStats stats;
  stats.sequential = passes_sequential_.Value();
  stats.packed = passes_packed_.Value();
  stats.reject_field_conflict = pack_reject_conflict_.Value();
  stats.reject_drop_gate = pack_reject_gate_.Value();
  stats.fallback_sequential = pack_fallback_.Value();
  stats.xt_allocations = xt_allocations_.Value();
  stats.xt_windows_opened = xt_windows_opened_.Value();
  stats.xt_windows_joined = xt_windows_joined_.Value();
  stats.xt_fallback = xt_fallback_.Value();
  return stats;
}

void Pipeline::ExportMetrics(common::metrics::Registry& registry) const {
  registry.GetCounter("pipeline.packets").Set(packets_.Value());
  registry.GetCounter("pipeline.drops").Set(drops_.Value());
  registry.GetCounter("pipeline.drops.nf_action").Set(drops_nf_.Value());
  registry.GetCounter("pipeline.drops.recirculation_guard").Set(drops_guard_.Value());
  registry.GetCounter("pipeline.drops.recirculation_overload").Set(drops_overload_.Value());
  registry.GetCounter("pipeline.drops.injected_fault").Set(drops_injected_.Value());
  registry.GetCounter("pipeline.recirculations").Set(recirculations_.Value());
  registry.GetCounter("pipeline.batches").Set(batches_.Value());
  registry.GetCounter("pipeline.cache.hits").Set(cache_hits_.Value());
  registry.GetCounter("pipeline.cache.misses").Set(cache_misses_.Value());
  registry.GetCounter("pipeline.cache.evictions").Set(cache_evictions_.Value());
  registry.GetCounter("pipeline.passes.sequential").Set(passes_sequential_.Value());
  registry.GetCounter("pipeline.passes.packed").Set(passes_packed_.Value());
  registry.GetCounter("pipeline.passes.saved")
      .Set(passes_sequential_.Value() - passes_packed_.Value());
  registry.GetCounter("pipeline.passes.merge_rejects.field_conflict")
      .Set(pack_reject_conflict_.Value());
  registry.GetCounter("pipeline.passes.merge_rejects.drop_gate")
      .Set(pack_reject_gate_.Value());
  registry.GetCounter("pipeline.passes.fallback_sequential").Set(pack_fallback_.Value());
  if (config_.cross_tenant_packing) {
    // Conditional like compiler.*: only cross-tenant runs carry the
    // parallelism.xt.* family, so per-tenant baselines stay unchanged.
    registry.GetCounter("parallelism.xt.allocations").Set(xt_allocations_.Value());
    registry.GetCounter("parallelism.xt.windows_opened").Set(xt_windows_opened_.Value());
    registry.GetCounter("parallelism.xt.windows_joined").Set(xt_windows_joined_.Value());
    registry.GetCounter("parallelism.xt.fallback").Set(xt_fallback_.Value());
    registry.GetCounter("parallelism.xt.compactions").Set(xt_compactions_.Value());
    registry.GetCounter("parallelism.xt.compaction_passes_saved")
        .Set(xt_compaction_saved_.Value());
  }
  if (plan_cache_ != nullptr) {
    registry.GetCounter("compiler.plans_compiled").Set(plan_cache_->PlansCompiled());
    registry.GetCounter("compiler.recompiles").Set(plan_cache_->Recompiles());
    registry.GetCounter("compiler.invalidations").Set(plan_cache_->Invalidations());
    registry.GetCounter("compiler.fallback_tenants").Set(plan_cache_->FallbackTenants());
    registry.GetCounter("compiler.fused_stages").Set(plan_cache_->FusedStages());
    registry.GetCounter("compiler.dead_tables_eliminated")
        .Set(plan_cache_->DeadTablesEliminated());
    registry.GetCounter("compiler.folded_tables").Set(plan_cache_->FoldedTables());
  }
  for (const auto& stage : stages_) {
    const std::string prefix = "pipeline.stage" + std::to_string(stage.index()) + ".";
    for (const auto& table : stage.tables()) {
      registry.GetCounter(prefix + table->name() + ".hits").Set(table->hit_count());
      registry.GetCounter(prefix + table->name() + ".misses").Set(table->miss_count());
      registry.GetCounter(prefix + table->name() + ".default_hits")
          .Set(table->default_hit_count());
    }
  }
}

ProcessResult Pipeline::ProcessBytes(std::span<const std::uint8_t> bytes) {
  auto parsed = net::Packet::Parse(bytes);
  if (!parsed) {
    ProcessResult result;
    result.parse_error = true;
    return result;
  }
  return Process(*parsed);
}

int Pipeline::TotalBlocksUsed() const {
  int blocks = 0;
  for (const auto& stage : stages_) blocks += stage.BlocksUsed();
  return blocks;
}

std::int64_t Pipeline::TotalEntriesUsed() const {
  std::int64_t entries = 0;
  for (const auto& stage : stages_) entries += stage.EntriesUsed();
  return entries;
}

}  // namespace sfp::switchsim
