// Per-worker flow decision cache for the batched serve path.
//
// ProcessBatch shards a batch by flow across workers; within a shard,
// packets of the same flow present the same key tuple to every table
// they traverse, so the resolved match-action decision — which entry
// won (or that the lookup missed) — repeats packet after packet. The
// cache memoizes that decision per (table, key tuple) in a small
// direct-mapped slot array owned by ONE worker, so it needs no
// synchronization of its own.
//
// Correctness contract (see DESIGN.md, "Lookup index & flow cache"):
// a decision is stamped with the table's mutation epoch at resolve
// time and is only replayed while the epoch is unchanged. Every
// control-plane mutation (AddEntry / RemoveEntry / RemoveTenantEntries
// / SetDefaultAction) bumps the epoch, so tenant admission and
// departure invalidate exactly the affected table's memoized
// decisions. Validation and replay happen inside
// MatchActionTable::Apply while it holds the table's shared lock, so a
// replayed entry cannot be freed mid-action by a concurrent departure.
// Replayed decisions are bit-identical to fresh lookups: the same
// entry fires with the same args, and hit/miss/default counters
// advance exactly as on the uncached path.
#pragma once

#include <cstdint>
#include <vector>

#include "switchsim/table.h"

namespace sfp::switchsim {

/// A direct-mapped memoization cache, owned by a single batch worker.
class FlowDecisionCache {
 public:
  /// One memoized decision.
  struct Decision {
    const MatchActionTable* table = nullptr;  // nullptr = empty slot
    std::uint64_t epoch = 0;
    std::uint32_t num_values = 0;
    /// true: entries_[entry_index] (with `handle`) won the lookup;
    /// false: the lookup missed (default action applies).
    bool hit = false;
    std::size_t entry_index = 0;
    EntryHandle handle = 0;
    std::uint64_t values[kMaxKeyFields] = {};
  };

  static constexpr std::size_t kDefaultSlots = 2048;

  /// `slots` is rounded up to a power of two (minimum 16).
  explicit FlowDecisionCache(std::size_t slots = kDefaultSlots) {
    std::size_t size = 16;
    while (size < slots) size <<= 1;
    slots_.resize(size);
    mask_ = size - 1;
  }

  /// Returns the memoized decision for (table, key tuple) if it is
  /// still valid at `epoch`, else nullptr. Counts a cache hit or miss.
  const Decision* Find(const MatchActionTable* table, const std::uint64_t* values,
                       std::size_t num_values, std::uint64_t epoch) {
    const Decision& slot = slots_[SlotIndex(table, values, num_values)];
    if (slot.table == table && slot.epoch == epoch && Matches(slot, values, num_values)) {
      ++hits_;
      return &slot;
    }
    ++misses_;
    return nullptr;
  }

  /// Memoizes a freshly resolved decision. `entry` is the winning
  /// entry (nullptr on lookup miss); `entry_index` its position in the
  /// table's entry vector at resolve time. Counts an eviction when a
  /// live decision for a *different* (table, key tuple) is displaced
  /// (an epoch-stale refill of the same tuple is not an eviction).
  void Store(const MatchActionTable* table, const std::uint64_t* values,
             std::size_t num_values, std::uint64_t epoch, const TableEntry* entry,
             std::size_t entry_index) {
    Decision& slot = slots_[SlotIndex(table, values, num_values)];
    if (slot.table != nullptr && !(slot.table == table && Matches(slot, values, num_values))) {
      ++evictions_;
    }
    slot.table = table;
    slot.epoch = epoch;
    slot.num_values = static_cast<std::uint32_t>(num_values);
    slot.hit = entry != nullptr;
    slot.entry_index = entry_index;
    slot.handle = entry != nullptr ? entry->handle : kInvalidEntryHandle;
    for (std::size_t i = 0; i < num_values; ++i) slot.values[i] = values[i];
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::size_t num_slots() const { return slots_.size(); }

 private:
  static bool Matches(const Decision& slot, const std::uint64_t* values,
                      std::size_t num_values) {
    if (slot.num_values != num_values) return false;
    for (std::size_t i = 0; i < num_values; ++i) {
      if (slot.values[i] != values[i]) return false;
    }
    return true;
  }

  std::size_t SlotIndex(const MatchActionTable* table, const std::uint64_t* values,
                        std::size_t num_values) const {
    std::uint64_t h = reinterpret_cast<std::uintptr_t>(table);
    for (std::size_t i = 0; i < num_values; ++i) {
      h ^= values[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    }
    return static_cast<std::size_t>(h) & mask_;
  }

  std::vector<Decision> slots_;
  std::size_t mask_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sfp::switchsim
