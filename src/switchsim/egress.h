// Egress port with strict-priority queueing.
//
// The ingress pipeline classifies packets (meta.flow_class); the egress
// port schedules them: higher class = higher priority, non-preemptive,
// work-conserving, with per-queue tail-drop at a byte occupancy cap.
// This extends the simulator beyond the paper's ingress-only
// measurements and backs the latency-under-load example.
//
// The model is an inline discrete-event loop: callers enqueue packets
// in non-decreasing arrival time; the port serves at line rate between
// arrivals and records departures.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/check.h"

namespace sfp::switchsim {

/// Per-class queue statistics.
struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t served = 0;
  double total_wait_ns = 0.0;  // time from arrival to departure start
  double max_wait_ns = 0.0;

  double MeanWaitNs() const { return served ? total_wait_ns / served : 0.0; }
};

/// A completed departure.
struct Departure {
  std::uint64_t packet_id = 0;
  std::uint8_t flow_class = 0;
  double arrival_ns = 0.0;
  double departure_ns = 0.0;  // transmission finished
};

/// Strict-priority egress port.
class EgressPort {
 public:
  /// `num_classes` priority levels (class c in [0, num_classes); higher
  /// c preferred), serving at `line_rate_gbps`, each queue bounded by
  /// `queue_capacity_bytes` of backlog.
  EgressPort(int num_classes, double line_rate_gbps, std::uint64_t queue_capacity_bytes);

  /// Offers a packet at `arrival_ns` (must be non-decreasing across
  /// calls). Returns the packet id, or nullopt if tail-dropped.
  std::optional<std::uint64_t> Enqueue(double arrival_ns, std::uint32_t bytes,
                                       std::uint8_t flow_class);

  /// Advances the port clock, serving queued packets up to `time_ns`.
  void DrainUntil(double time_ns);

  /// Serves everything left in the queues.
  void DrainAll();

  /// Departures completed so far, in service order (cleared on call).
  std::vector<Departure> TakeDepartures();

  const QueueStats& stats(std::uint8_t flow_class) const {
    SFP_CHECK_LT(flow_class, queues_.size());
    return stats_[flow_class];
  }

  /// Current backlog in bytes across all queues.
  std::uint64_t BacklogBytes() const;

 private:
  struct Waiting {
    std::uint64_t id;
    std::uint32_t bytes;
    double arrival_ns;
  };

  double TransmitNs(std::uint32_t bytes) const {
    return bytes * 8.0 / line_rate_gbps_;  // bits / (Gbit/s) = ns
  }
  /// Serves while the server is free before `horizon` and work exists.
  void Serve(double horizon_ns);

  double line_rate_gbps_;
  std::uint64_t queue_capacity_bytes_;
  std::vector<std::deque<Waiting>> queues_;  // index = class
  std::vector<QueueStats> stats_;
  std::vector<std::uint64_t> backlog_bytes_;
  double server_free_ns_ = 0.0;
  double clock_ns_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::vector<Departure> departures_;
};

}  // namespace sfp::switchsim
