// The programmable switch pipeline: parser -> S MAU stages -> deparser,
// with a recirculation path and Tofino-like per-stage memory accounting
// (B blocks of E rule entries per stage; a table occupies
// max(1, ceil(entries / E)) blocks — the consolidated memory model of
// eq. 24).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/worker_pool.h"
#include "switchsim/flow_cache.h"
#include "switchsim/table.h"
#include "switchsim/timing.h"
#include "switchsim/types.h"

namespace sfp::switchsim {

namespace compiler {
struct ActionMetadata;
struct CompiledPlan;
class ExecContext;
class PlanCache;
struct PlanDeltas;
}  // namespace compiler

/// Static switch parameters (defaults follow §VI-C's simulated switch:
/// 8 stages x 20 blocks x 1000 entries, 400 Gbps backplane; the
/// testbed Tofino of §VI-B instead has 12 stages and 3.2 Tbps).
struct SwitchConfig {
  int num_stages = 8;
  int blocks_per_stage = 20;
  int entries_per_block = 1000;
  double backplane_gbps = 400.0;
  /// Safety bound on recirculation loops.
  int max_passes = 8;
  /// Recirculation-port overload model. When > 0 the recirculation
  /// path is a finite port of this rate: each recirculating packet
  /// occupies the port for wire_bits / rate nanoseconds of virtual
  /// time (anchored at PacketMeta::time_ns, i.e. the packet's ingress
  /// timestamp), and a packet whose pass would have to queue more than
  /// `recirculation_queue_ns` behind earlier recirculations is dropped
  /// with DropReason::kRecirculationOverload instead. 0 keeps the
  /// seed's behaviour: recirculation is free and never drops.
  double recirculation_gbps = 0.0;
  /// Maximum tolerated recirculation-port backlog (virtual ns).
  double recirculation_queue_ns = 2000.0;
  /// Harden the max_passes guard: drop a packet that still requests
  /// recirculation at the pass limit (reason kRecirculationGuard)
  /// instead of letting it exit with a truncated chain. Off by default
  /// to preserve the historical truncation semantics.
  bool drop_on_recirculation_guard = false;
  /// Intra-chain NF parallelism (DESIGN.md): when true, AllocateSfc
  /// packs maximal runs of mutually independent NFs into shared
  /// recirculation passes instead of placing strictly in chain order.
  /// Opt-in; off preserves the sequential §IV layout exactly. Packed
  /// and sequential layouts are verdict- and telemetry-equivalent
  /// (pass counts and latency excluded — reducing them is the point).
  bool nf_parallelism = false;
  /// Cross-tenant recirculation pass co-scheduling (DESIGN.md
  /// "Cross-tenant pass sharing"): when true, AllocateSfc consults a
  /// fabric-wide stage-window occupancy ledger and steers NFs without
  /// chain successors into already-open (pass, stage) windows, keeping
  /// scarce early-stage capacity for order-constrained chains, and
  /// tenant departures trigger window compaction through the §V-E
  /// atomic update path. Implies dependency-aware planning (the packed
  /// reference is computed even when nf_parallelism is off). Opt-in;
  /// off preserves the per-tenant behaviour bit-for-bit. Per tenant the
  /// co-scheduled plan is never worse than the PR-9 reference
  /// (fallback counted in parallelism.xt.fallback); forwarding and
  /// telemetry stay equivalent (pass counts and latency excluded).
  bool cross_tenant_packing = false;
  TimingModel timing;
};

/// One MAU stage: hosts tables and tracks block occupancy.
class Stage {
 public:
  Stage(int index, const SwitchConfig& config);

  /// Creates a table in this stage; returns nullptr if adding its
  /// initial block reservation would exceed the stage's B blocks.
  MatchActionTable* AddTable(std::string name, std::vector<MatchFieldSpec> key);

  /// Removes a table by name; returns false if unknown.
  bool RemoveTable(const std::string& name);

  /// Finds a table by name (nullptr if absent).
  MatchActionTable* FindTable(const std::string& name);
  const MatchActionTable* FindTable(const std::string& name) const;

  /// Blocks occupied by all tables (each table >= 1 block).
  int BlocksUsed() const;
  /// Installed entries across all tables.
  std::int64_t EntriesUsed() const;
  /// True if one more entry in `table` still fits the stage memory.
  bool CanAddEntry(const MatchActionTable& table) const;
  /// True if `count` more entries in `table` still fit the stage memory.
  bool CanAddEntries(const MatchActionTable& table, std::int64_t count) const;

  int index() const { return index_; }
  const std::vector<std::unique_ptr<MatchActionTable>>& tables() const { return tables_; }

  /// Attaches the owning pipeline's shared mutation counter; every
  /// table created in this stage bumps it alongside its own epoch.
  void SetSharedEpoch(common::metrics::RelaxedCounter* shared);

 private:
  int index_;
  int blocks_per_stage_;
  int entries_per_block_;
  std::vector<std::unique_ptr<MatchActionTable>> tables_;
  common::metrics::RelaxedCounter* shared_epoch_ = nullptr;
};

/// Result of pushing one packet through the pipeline.
struct ProcessResult {
  net::Packet packet;
  PacketMeta meta;
  int passes = 1;
  int active_stages = 0;
  int idle_stages = 0;
  double latency_ns = 0.0;
  /// Parse failed (ProcessBytes only); packet/meta are default.
  bool parse_error = false;
};

/// Options for the batched processing path.
struct BatchOptions {
  /// Worker shards to split the batch into; 0 = common::DefaultParallelism().
  int num_threads = 0;
  /// Batches smaller than this run inline on the caller (sharding
  /// overhead would dominate).
  int min_parallel_batch = 64;
  /// Pool to run on; nullptr = the process-wide shared pool.
  common::WorkerPool* pool = nullptr;
  /// Slots of each worker's flow decision cache (rounded up to a power
  /// of two); <= 0 disables memoization. Results are bit-identical
  /// either way — the cache only skips re-resolving lookups.
  int flow_cache_slots = static_cast<int>(FlowDecisionCache::kDefaultSlots);
  /// Optional per-worker result sink: after a worker finishes its
  /// shard, the sink runs on that worker's thread with the shard's
  /// input indices and the full (input-ordered) result array, so
  /// downstream accounting fuses into the parallel section instead of
  /// running as a serial post-pass on the caller. On the inline path
  /// it runs once on the caller with indices 0..n-1. The sink must be
  /// safe to invoke concurrently from multiple workers; each input
  /// index is delivered to exactly one invocation.
  std::function<void(std::span<const std::uint32_t> indices,
                     std::span<const ProcessResult> results)>
      result_sink;
};

/// The switch pipeline.
class Pipeline {
 public:
  explicit Pipeline(SwitchConfig config = {});

  /// Runs a parsed packet through the pipeline, following drops and
  /// recirculation. The metadata's tenant id is seeded from the VLAN
  /// tag; pass starts at 0.
  ProcessResult Process(const net::Packet& packet);

  /// Batched counterpart of Process: shards `packets` by flow hash
  /// (5-tuple + tenant) across a worker pool and returns one result per
  /// input, in input order. A flow's packets always land in the same
  /// shard and are served in their batch order, so per-flow order is
  /// preserved and results are bit-identical to calling Process in a
  /// loop (cross-flow NF state such as shared rate-limiter buckets is
  /// the one exception — see docs/METRICS.md and DESIGN.md). Tables may
  /// be mutated concurrently (tenant admission/departure); packet
  /// results then reflect each table's state at lookup time.
  std::vector<ProcessResult> ProcessBatch(std::span<const net::Packet> packets,
                                          const BatchOptions& options = {});

  /// ProcessBatch into a caller-owned buffer: results[i] receives
  /// packet i's result (every field is written, so the buffer can be
  /// reused across batches without re-zeroing — this keeps the
  /// steady-state serve loop free of per-batch allocation). `results`
  /// must have at least packets.size() elements; elements beyond that
  /// are untouched.
  void ProcessBatchInto(std::span<const net::Packet> packets,
                        std::span<ProcessResult> results, const BatchOptions& options = {});

  /// Parses raw bytes first (exercising the wire path), then Process().
  ProcessResult ProcessBytes(std::span<const std::uint8_t> bytes);

  Stage& stage(int k);
  const Stage& stage(int k) const;
  int num_stages() const { return static_cast<int>(stages_.size()); }
  const SwitchConfig& config() const { return config_; }

  /// Aggregate counters.
  std::uint64_t packets_processed() const { return packets_.Value(); }
  std::uint64_t packets_dropped() const { return drops_.Value(); }
  /// Drops attributed to one reason (kNone returns 0).
  std::uint64_t packets_dropped_by(DropReason reason) const;
  std::uint64_t recirculations() const { return recirculations_.Value(); }
  std::uint64_t batches_processed() const { return batches_.Value(); }
  /// Flow-decision-cache totals aggregated over all batch workers
  /// (exported as pipeline.cache.*).
  std::uint64_t flow_cache_hits() const { return cache_hits_.Value(); }
  std::uint64_t flow_cache_misses() const { return cache_misses_.Value(); }
  std::uint64_t flow_cache_evictions() const { return cache_evictions_.Value(); }

  /// Pass-packing tallies from the data plane's allocator (exported as
  /// pipeline.passes.*; see docs/METRICS.md). All zero unless
  /// SwitchConfig::nf_parallelism allocations happened.
  struct PassPackingStats {
    /// Passes the chain-order reference plan would have used.
    std::uint64_t sequential = 0;
    /// Passes the installed (packed) plan uses.
    std::uint64_t packed = 0;
    /// Adjacent-NF merges rejected by a field-level conflict.
    std::uint64_t reject_field_conflict = 0;
    /// Merges rejected because a drop decision gates a stateful NF.
    std::uint64_t reject_drop_gate = 0;
    /// Packed plans discarded for the sequential reference (the
    /// never-worse fallback: greedy packing needed more passes).
    std::uint64_t fallback_sequential = 0;
    /// Cross-tenant co-scheduling tallies (parallelism.xt.*; all zero
    /// unless SwitchConfig::cross_tenant_packing).
    /// Allocations that installed the co-scheduled plan.
    std::uint64_t xt_allocations = 0;
    /// Placements that opened a new (pass, stage) window.
    std::uint64_t xt_windows_opened = 0;
    /// Placements that joined a window another tenant already holds.
    std::uint64_t xt_windows_joined = 0;
    /// Co-scheduled plans discarded for the per-tenant reference (the
    /// never-worse fallback: co-scheduling needed more passes).
    std::uint64_t xt_fallback = 0;
  };
  /// Accumulates one allocation's packing tallies (data plane only).
  void RecordPassPacking(const PassPackingStats& stats);
  PassPackingStats pass_packing() const;

  /// Accumulates one departure-time window-compaction move that
  /// re-provisioned a tenant into `passes_saved` fewer passes
  /// (SfpSystem only; exported as parallelism.xt.compaction*).
  void RecordXtCompaction(std::uint64_t passes_saved);
  std::uint64_t xt_compactions() const { return xt_compactions_.Value(); }
  std::uint64_t xt_compaction_passes_saved() const {
    return xt_compaction_saved_.Value();
  }

  /// Turns on the per-tenant pipeline compiler (docs/COMPILER.md):
  /// batch workers serve tenants whose rules lift cleanly from a
  /// CompiledPlan and interpret the rest. Results, drops, and counters
  /// are bit-identical to the interpreted path. `metadata` carries the
  /// NF library's action traits (action_traits.h); actions without
  /// traits are treated as opaque calls. Opt-in: without this call the
  /// pipeline behaves exactly as before (including the per-worker flow
  /// decision cache, which the compiled path supersedes).
  void EnableCompiler(compiler::ActionMetadata metadata);
  /// Drops the plan cache and reverts every tenant to interpretation.
  void DisableCompiler();
  bool compiler_enabled() const { return plan_cache_ != nullptr; }
  /// The shared plan cache, or nullptr when the compiler is off. The
  /// control plane uses it to warm/invalidate plans across rule churn.
  compiler::PlanCache* plan_cache() { return plan_cache_.get(); }

  /// Pipeline-wide table-mutation counter: bumped whenever any table
  /// in any stage mutates. Compiled plans capture it for a one-load
  /// per-packet staleness fast path (CompiledPlan::Validate).
  const common::metrics::RelaxedCounter* table_mutation_epoch() const {
    return &table_mutations_;
  }

  /// Applies one worker's buffered pipeline-level counter deltas
  /// (compiled serve path; called from ExecContext::Flush).
  void AddCompiledCounts(const compiler::PlanDeltas& deltas);

  /// Snapshots the pipeline's counters (packets, drops, recirculations,
  /// batches, per-stage/per-table hits and misses, and compiler.* when
  /// the compiler is enabled) into `registry` under the names
  /// documented in docs/METRICS.md.
  void ExportMetrics(common::metrics::Registry& registry) const;

  /// Total blocks used across stages (utilization numerator of Fig. 6).
  int TotalBlocksUsed() const;
  /// Total entries installed across stages.
  std::int64_t TotalEntriesUsed() const;

 private:
  /// Scalar serve path shared by Process and the batch workers; only
  /// touches shared state through atomics and the tables' shared locks.
  /// `cache` is the calling worker's private flow decision cache
  /// (nullptr on the scalar path). `exec` is the calling batch worker's
  /// compiled-plan context: when set and the packet's tenant has a
  /// valid plan, the packet is served by ExecuteCompiled instead of the
  /// interpreter loop below. Writes every field of `result` (its prior
  /// contents are irrelevant), so the batch path serves straight into
  /// reusable result buffers — no per-packet ProcessResult is moved,
  /// copied, or re-zeroed.
  void ProcessOne(const net::Packet& packet, ProcessResult& result,
                  FlowDecisionCache* cache = nullptr,
                  compiler::ExecContext* exec = nullptr);

  /// Compiled serve path (defined in compiler/exec.cc): runs `packet`
  /// through `plan`, buffering all counter bumps into `deltas` and
  /// writing every field of `result`. Bit-identical to the interpreter
  /// loop in ProcessOne by construction (see docs/COMPILER.md for the
  /// equivalence argument).
  void ExecuteCompiled(const compiler::CompiledPlan& plan, const net::Packet& packet,
                       compiler::PlanDeltas& deltas, ProcessResult& result);

  /// Charges one recirculation pass to the finite recirculation port;
  /// false = the port's backlog bound is exceeded (overload drop).
  /// Always true when the model is disabled (recirculation_gbps <= 0).
  bool AdmitRecirculation(double now_ns, double service_ns);

  /// Bumps the total and the per-reason drop counter.
  void RecordDrop(DropReason reason);

  SwitchConfig config_;
  std::vector<Stage> stages_;
  common::metrics::RelaxedCounter packets_;
  /// Pipeline-wide table-mutation counter (bumped by every table's
  /// BumpEpoch); compiled plans read it as a one-load staleness fast
  /// path (CompiledPlan::Validate).
  common::metrics::RelaxedCounter table_mutations_;
  common::metrics::RelaxedCounter drops_;
  common::metrics::RelaxedCounter drops_nf_;
  common::metrics::RelaxedCounter drops_guard_;
  common::metrics::RelaxedCounter drops_overload_;
  common::metrics::RelaxedCounter drops_injected_;
  common::metrics::RelaxedCounter recirculations_;
  common::metrics::RelaxedCounter batches_;
  common::metrics::RelaxedCounter cache_hits_;
  common::metrics::RelaxedCounter cache_misses_;
  common::metrics::RelaxedCounter cache_evictions_;
  common::metrics::RelaxedCounter passes_sequential_;
  common::metrics::RelaxedCounter passes_packed_;
  common::metrics::RelaxedCounter pack_reject_conflict_;
  common::metrics::RelaxedCounter pack_reject_gate_;
  common::metrics::RelaxedCounter pack_fallback_;
  common::metrics::RelaxedCounter xt_allocations_;
  common::metrics::RelaxedCounter xt_windows_opened_;
  common::metrics::RelaxedCounter xt_windows_joined_;
  common::metrics::RelaxedCounter xt_fallback_;
  common::metrics::RelaxedCounter xt_compactions_;
  common::metrics::RelaxedCounter xt_compaction_saved_;
  /// Virtual time at which the recirculation port next frees up.
  common::metrics::RelaxedDouble recirc_busy_until_ns_;
  /// Set by EnableCompiler; shared with the batch workers' per-shard
  /// ExecContexts (shared_ptr so a DisableCompiler cannot free it under
  /// an in-flight batch).
  std::shared_ptr<compiler::PlanCache> plan_cache_;
};

}  // namespace sfp::switchsim
