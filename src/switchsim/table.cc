#include "switchsim/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/faultinject.h"
#include "switchsim/flow_cache.h"

namespace sfp::switchsim {

namespace {

/// splitmix64 finalizer — mixes one word into an accumulating hash.
std::uint64_t MixWord(std::uint64_t h, std::uint64_t word) {
  h ^= word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

}  // namespace

std::size_t MatchActionTable::ExactKeyHash::operator()(
    std::span<const std::uint64_t> key) const {
  std::uint64_t h = 0x94d049bb133111ebULL;
  for (const std::uint64_t word : key) h = MixWord(h, word);
  return static_cast<std::size_t>(h);
}

MatchActionTable::MatchActionTable(std::string name, std::vector<MatchFieldSpec> key)
    : name_(std::move(name)), key_(std::move(key)) {
  SFP_CHECK_LE(key_.size(), kMaxKeyFields);
  for (std::size_t f = 0; f < key_.size(); ++f) {
    if (key_[f].kind == MatchKind::kExact) {
      exact_fields_.push_back(f);
    } else {
      nonexact_fields_.push_back(f);
    }
  }
}

ActionId MatchActionTable::RegisterAction(std::string name, ActionFn fn) {
  std::unique_lock lock(entries_mutex_);
  action_names_.push_back(std::move(name));
  actions_.push_back(std::move(fn));
  return static_cast<ActionId>(actions_.size() - 1);
}

void MatchActionTable::SetDefaultAction(ActionId action, ActionArgs args) {
  std::unique_lock lock(entries_mutex_);
  SFP_CHECK_GE(action, 0);
  SFP_CHECK_LT(static_cast<std::size_t>(action), actions_.size());
  default_action_ = {action, std::move(args)};
  BumpEpoch();  // memoized miss decisions must re-resolve
}

bool MatchActionTable::IsPureEntry(const TableEntry& entry) const {
  for (const std::size_t f : nonexact_fields_) {
    const FieldMatch& m = entry.matches[f];
    switch (key_[f].kind) {
      case MatchKind::kTernary:
        if (m.mask != 0) return false;
        break;
      case MatchKind::kLpm:
        if (m.prefix_len > 0) return false;
        break;
      case MatchKind::kRange:
        if (m.lo != 0 || m.hi != ~0ULL) return false;
        break;
      case MatchKind::kExact:
        break;  // unreachable: exact fields are not in nonexact_fields_
    }
  }
  return true;
}

bool MatchActionTable::HasWildcardExact(const TableEntry& entry) const {
  for (const std::size_t f : exact_fields_) {
    if (entry.matches[f].mask == 0) return true;
  }
  return false;
}

std::vector<std::uint64_t> MatchActionTable::ExactKeyOf(const TableEntry& entry) const {
  std::vector<std::uint64_t> key;
  key.reserve(exact_fields_.size());
  for (const std::size_t f : exact_fields_) key.push_back(entry.matches[f].value);
  return key;
}

int MatchActionTable::PrefixScore(const TableEntry& entry) const {
  int score = 0;
  for (std::size_t f = 0; f < key_.size(); ++f) {
    if (key_[f].kind == MatchKind::kLpm) score += entry.matches[f].prefix_len;
  }
  return score;
}

void MatchActionTable::IndexEntryLocked(std::size_t index) {
  const TableEntry& entry = entries_[index];
  if (HasWildcardExact(entry)) {
    // A wildcarded exact field matches every probe value, so the entry
    // is unreachable from any single hash bucket; park it in the side
    // tier (priority desc, handle asc — the new entry has the largest
    // handle, so it slots after its priority peers).
    const auto pos = std::upper_bound(
        wildcard_spill_.begin(), wildcard_spill_.end(), entry.priority,
        [this](int priority, std::size_t i) { return entries_[i].priority < priority; });
    wildcard_spill_.insert(pos, index);
    return;
  }
  Bucket& bucket = index_[ExactKeyOf(entry)];
  if (IsPureEntry(entry)) {
    // The pure tier's winner is fully determined at install time:
    // pure entries share a prefix score of 0, so only (priority,
    // earliest handle) discriminate. Insertion happens in ascending
    // handle order (both incrementally and during rebuild), so a
    // strict priority improvement is the only way to displace the
    // incumbent.
    if (bucket.pure == Bucket::npos ||
        entry.priority > entries_[bucket.pure].priority) {
      bucket.pure = index;
    }
    return;
  }
  // Spill stays sorted by (priority desc, handle asc); the new entry
  // carries the largest handle, so it slots after its priority peers.
  const auto pos = std::upper_bound(
      bucket.spill.begin(), bucket.spill.end(), entry.priority,
      [this](int priority, std::size_t i) { return entries_[i].priority < priority; });
  bucket.spill.insert(pos, index);
}

void MatchActionTable::RebuildIndexLocked() {
  index_.clear();
  wildcard_spill_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) IndexEntryLocked(i);
}

EntryHandle MatchActionTable::AddEntry(std::vector<FieldMatch> matches, ActionId action,
                                       ActionArgs args, int priority,
                                       std::uint16_t owner_tenant) {
  if (SFP_FAULT("switchsim.table.add_entry")) return kInvalidEntryHandle;
  std::unique_lock lock(entries_mutex_);
  SFP_CHECK_MSG(matches.size() == key_.size(), "entry key arity mismatch");
  SFP_CHECK_GE(action, 0);
  SFP_CHECK_LT(static_cast<std::size_t>(action), actions_.size());
  TableEntry entry;
  entry.matches = std::move(matches);
  entry.action = action;
  entry.args = std::move(args);
  entry.priority = priority;
  entry.owner_tenant = owner_tenant;
  entry.handle = next_handle_++;
  entries_.push_back(std::move(entry));
  IndexEntryLocked(entries_.size() - 1);
  BumpEpoch();
  return entries_.back().handle;
}

bool MatchActionTable::RemoveEntry(EntryHandle handle) {
  std::unique_lock lock(entries_mutex_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [handle](const TableEntry& e) { return e.handle == handle; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  // Removal shifts entry indices, so the index is rebuilt wholesale;
  // tenant departure is the control-plane slow path.
  RebuildIndexLocked();
  BumpEpoch();
  return true;
}

std::size_t MatchActionTable::RemoveTenantEntries(std::uint16_t tenant) {
  std::unique_lock lock(entries_mutex_);
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [tenant](const TableEntry& e) { return e.owner_tenant == tenant; });
  const std::size_t removed = before - entries_.size();
  if (removed > 0) {
    RebuildIndexLocked();
    // No epoch bump when nothing was removed: departures of tenants
    // with no rules in this table must not invalidate everyone's
    // cached decisions.
    BumpEpoch();
  }
  return removed;
}

std::size_t MatchActionTable::num_entries() const {
  std::shared_lock lock(entries_mutex_);
  return entries_.size();
}

void MatchActionTable::ExtractKey(const net::Packet& packet, const PacketMeta& meta,
                                  std::uint64_t* values) const {
  for (std::size_t f = 0; f < key_.size(); ++f) {
    values[f] = GetField(packet, meta, key_[f].field);
  }
}

const TableEntry* MatchActionTable::Lookup(const net::Packet& packet,
                                           const PacketMeta& meta) const {
  std::shared_lock lock(entries_mutex_);
  std::uint64_t values[kMaxKeyFields];
  ExtractKey(packet, meta, values);
  return LookupIndexedLocked(values);
}

const TableEntry* MatchActionTable::LookupReference(const net::Packet& packet,
                                                    const PacketMeta& meta) const {
  std::shared_lock lock(entries_mutex_);
  std::uint64_t values[kMaxKeyFields];
  ExtractKey(packet, meta, values);
  return LookupReferenceLocked(values);
}

const TableEntry* MatchActionTable::LookupIndexedLocked(const std::uint64_t* values) const {
  // Stack-array probe via the transparent hash — the per-packet serve
  // path allocates nothing here.
  std::uint64_t exact[kMaxKeyFields];
  std::size_t n = 0;
  for (const std::size_t f : exact_fields_) exact[n++] = values[f];
  const auto it = index_.find(std::span<const std::uint64_t>(exact, n));

  const TableEntry* best = nullptr;
  int best_priority = 0;
  int best_prefix = -1;
  EntryHandle best_handle = 0;
  if (it != index_.end()) {
    const Bucket& bucket = it->second;
    if (bucket.pure != Bucket::npos) {
      best = &entries_[bucket.pure];
      best_priority = best->priority;
      best_prefix = PrefixScore(*best);
      best_handle = best->handle;
    }
    for (const std::size_t index : bucket.spill) {
      const TableEntry& entry = entries_[index];
      // Spill is priority-sorted: once the candidate's priority falls
      // below the best match, nothing later can outrank it (equal
      // priority can still win on LPM prefix, so only strictly-lower
      // priorities are skipped).
      if (best != nullptr && entry.priority < best_priority) break;
      bool match = true;
      for (const std::size_t f : nonexact_fields_) {
        if (!FieldMatches(entry.matches[f], key_[f].kind, values[f])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      const int prefix = PrefixScore(entry);
      if (best == nullptr || entry.priority > best_priority ||
          (entry.priority == best_priority &&
           (prefix > best_prefix ||
            (prefix == best_prefix && entry.handle < best_handle)))) {
        best = &entry;
        best_priority = entry.priority;
        best_prefix = prefix;
        best_handle = entry.handle;
      }
    }
  }
  // Side tier: entries with a wildcarded exact field (per-pass
  // catch-alls on exact-key NFs). Same priority-sorted early break;
  // concrete fields — exact and non-exact alike — are verified in
  // full because the hash probe never vetted them.
  for (const std::size_t index : wildcard_spill_) {
    const TableEntry& entry = entries_[index];
    if (best != nullptr && entry.priority < best_priority) break;
    bool match = true;
    for (std::size_t f = 0; f < key_.size(); ++f) {
      if (!FieldMatches(entry.matches[f], key_[f].kind, values[f])) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    const int prefix = PrefixScore(entry);
    if (best == nullptr || entry.priority > best_priority ||
        (entry.priority == best_priority &&
         (prefix > best_prefix ||
          (prefix == best_prefix && entry.handle < best_handle)))) {
      best = &entry;
      best_priority = entry.priority;
      best_prefix = prefix;
      best_handle = entry.handle;
    }
  }
  return best;
}

const TableEntry* MatchActionTable::LookupReferenceLocked(const std::uint64_t* values) const {
  const TableEntry* best = nullptr;
  int best_priority = 0;
  int best_prefix = -1;
  for (const TableEntry& entry : entries_) {
    bool match = true;
    int prefix_score = 0;
    for (std::size_t f = 0; f < key_.size() && match; ++f) {
      match = FieldMatches(entry.matches[f], key_[f].kind, values[f]);
      if (key_[f].kind == MatchKind::kLpm) prefix_score += entry.matches[f].prefix_len;
    }
    if (!match) continue;
    if (best == nullptr || entry.priority > best_priority ||
        (entry.priority == best_priority && prefix_score > best_prefix)) {
      best = &entry;
      best_priority = entry.priority;
      best_prefix = prefix_score;
    }
  }
  return best;
}

bool MatchActionTable::Apply(net::Packet& packet, PacketMeta& meta,
                             FlowDecisionCache* cache) {
  // Held across the action so the winning entry's args cannot be
  // removed mid-execution by a concurrent tenant departure. The epoch
  // is read under the same lock, so a cached decision validated here
  // cannot refer to an entry a concurrent departure is freeing.
  std::shared_lock lock(entries_mutex_);
  std::uint64_t values[kMaxKeyFields];
  ExtractKey(packet, meta, values);

  const TableEntry* entry = nullptr;
  bool resolved = false;
  if (cache != nullptr) {
    const std::uint64_t epoch = epoch_.Value();
    if (const auto* decision = cache->Find(this, values, key_.size(), epoch)) {
      if (decision->hit) {
        // Epoch equality means no mutation since the decision was
        // stored, so the memoized index still names the same entry;
        // the handle check makes that assumption explicit.
        SFP_CHECK_LT(decision->entry_index, entries_.size());
        entry = &entries_[decision->entry_index];
        SFP_CHECK_EQ(entry->handle, decision->handle);
      }
      resolved = true;
    }
    if (!resolved) {
      entry = LookupIndexedLocked(values);
      cache->Store(this, values, key_.size(), epoch, entry,
                   entry != nullptr
                       ? static_cast<std::size_t>(entry - entries_.data())
                       : 0);
      resolved = true;
    }
  }
  if (!resolved) entry = LookupIndexedLocked(values);

  if (entry != nullptr) {
    hits_.Add(1);
    actions_[static_cast<std::size_t>(entry->action)](packet, meta, entry->args);
    return true;
  }
  misses_.Add(1);
  if (default_action_) {
    default_hits_.Add(1);
    actions_[static_cast<std::size_t>(default_action_->first)](packet, meta,
                                                               default_action_->second);
  }
  return false;
}

bool MatchActionTable::NeedsTcam() const {
  return std::any_of(key_.begin(), key_.end(), [](const MatchFieldSpec& spec) {
    return spec.kind == MatchKind::kTernary || spec.kind == MatchKind::kRange;
  });
}

MatchActionTable::CompileSnapshot MatchActionTable::Snapshot() const {
  std::shared_lock lock(entries_mutex_);
  CompileSnapshot snapshot;
  snapshot.entries = entries_;
  snapshot.actions = actions_;
  snapshot.action_names = action_names_;
  snapshot.default_action = default_action_;
  snapshot.epoch = epoch_.Value();
  return snapshot;
}

void MatchActionTable::AddApplyCounts(std::uint64_t hits, std::uint64_t misses,
                                      std::uint64_t default_hits) {
  if (hits != 0) hits_.Add(hits);
  if (misses != 0) misses_.Add(misses);
  if (default_hits != 0) default_hits_.Add(default_hits);
}

}  // namespace sfp::switchsim
