#include "switchsim/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/faultinject.h"

namespace sfp::switchsim {

MatchActionTable::MatchActionTable(std::string name, std::vector<MatchFieldSpec> key)
    : name_(std::move(name)), key_(std::move(key)) {}

ActionId MatchActionTable::RegisterAction(std::string name, ActionFn fn) {
  std::unique_lock lock(entries_mutex_);
  action_names_.push_back(std::move(name));
  actions_.push_back(std::move(fn));
  return static_cast<ActionId>(actions_.size() - 1);
}

void MatchActionTable::SetDefaultAction(ActionId action, ActionArgs args) {
  std::unique_lock lock(entries_mutex_);
  SFP_CHECK_GE(action, 0);
  SFP_CHECK_LT(static_cast<std::size_t>(action), actions_.size());
  default_action_ = {action, std::move(args)};
}

EntryHandle MatchActionTable::AddEntry(std::vector<FieldMatch> matches, ActionId action,
                                       ActionArgs args, int priority,
                                       std::uint16_t owner_tenant) {
  if (SFP_FAULT("switchsim.table.add_entry")) return kInvalidEntryHandle;
  std::unique_lock lock(entries_mutex_);
  SFP_CHECK_MSG(matches.size() == key_.size(), "entry key arity mismatch");
  SFP_CHECK_GE(action, 0);
  SFP_CHECK_LT(static_cast<std::size_t>(action), actions_.size());
  TableEntry entry;
  entry.matches = std::move(matches);
  entry.action = action;
  entry.args = std::move(args);
  entry.priority = priority;
  entry.owner_tenant = owner_tenant;
  entry.handle = next_handle_++;
  entries_.push_back(std::move(entry));
  return entries_.back().handle;
}

bool MatchActionTable::RemoveEntry(EntryHandle handle) {
  std::unique_lock lock(entries_mutex_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [handle](const TableEntry& e) { return e.handle == handle; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::size_t MatchActionTable::RemoveTenantEntries(std::uint16_t tenant) {
  std::unique_lock lock(entries_mutex_);
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [tenant](const TableEntry& e) { return e.owner_tenant == tenant; });
  return before - entries_.size();
}

std::size_t MatchActionTable::num_entries() const {
  std::shared_lock lock(entries_mutex_);
  return entries_.size();
}

const TableEntry* MatchActionTable::Lookup(const net::Packet& packet,
                                           const PacketMeta& meta) const {
  std::shared_lock lock(entries_mutex_);
  return LookupLocked(packet, meta);
}

const TableEntry* MatchActionTable::LookupLocked(const net::Packet& packet,
                                                 const PacketMeta& meta) const {
  // Extract key field values once.
  std::uint64_t values[16];
  SFP_CHECK_LE(key_.size(), 16u);
  for (std::size_t f = 0; f < key_.size(); ++f) {
    values[f] = GetField(packet, meta, key_[f].field);
  }

  const TableEntry* best = nullptr;
  int best_priority = 0;
  int best_prefix = -1;
  for (const TableEntry& entry : entries_) {
    bool match = true;
    int prefix_score = 0;
    for (std::size_t f = 0; f < key_.size() && match; ++f) {
      match = FieldMatches(entry.matches[f], key_[f].kind, values[f]);
      if (key_[f].kind == MatchKind::kLpm) prefix_score += entry.matches[f].prefix_len;
    }
    if (!match) continue;
    if (best == nullptr || entry.priority > best_priority ||
        (entry.priority == best_priority && prefix_score > best_prefix)) {
      best = &entry;
      best_priority = entry.priority;
      best_prefix = prefix_score;
    }
  }
  return best;
}

bool MatchActionTable::Apply(net::Packet& packet, PacketMeta& meta) {
  // Held across the action so the winning entry's args cannot be
  // removed mid-execution by a concurrent tenant departure.
  std::shared_lock lock(entries_mutex_);
  const TableEntry* entry = LookupLocked(packet, meta);
  if (entry != nullptr) {
    hits_.Add(1);
    actions_[static_cast<std::size_t>(entry->action)](packet, meta, entry->args);
    return true;
  }
  misses_.Add(1);
  if (default_action_) {
    actions_[static_cast<std::size_t>(default_action_->first)](packet, meta,
                                                               default_action_->second);
  }
  return false;
}

bool MatchActionTable::NeedsTcam() const {
  return std::any_of(key_.begin(), key_.end(), [](const MatchFieldSpec& spec) {
    return spec.kind == MatchKind::kTernary || spec.kind == MatchKind::kRange;
  });
}

}  // namespace sfp::switchsim
