// Latency model of the simulated switch.
//
// Calibration (documented in DESIGN.md / EXPERIMENTS.md): the paper
// reports a measured 341 ns average processing latency for a 4-NF SFC
// on Tofino and a +35 ns overhead for three recirculations when the
// same 4 NFs are applied one per pass (Fig. 5). Those two measured
// points pin the model:
//
//   latency = parser + deparser                  (once per packet; the
//                                                 recirculation path
//                                                 keeps parsed headers)
//           + active_stage_ns  * (stages that applied an NF)
//           + idle_stage_ns    * (stages traversed as No-Op)
//           + recirculation_ns * (passes - 1)
//
// With the defaults below: 4 active + 8 idle in one 12-stage pass gives
// 70 + 4*66.55 + 8*0.5 = 340.2 ns =~ 341 ns; the 4-pass variant gives
// an extra 36 idle stages + 3 recirculations = +34 ns =~ +35 ns. The
// paper's conclusion — latency tracks SFC processing complexity, not
// recirculation count — is thus structural in the model.
#pragma once

namespace sfp::switchsim {

/// Per-component latency constants (nanoseconds).
struct TimingModel {
  double parser_ns = 40.0;
  double deparser_ns = 30.0;
  /// A stage whose MAT matched and executed an NF action.
  double active_stage_ns = 66.55;
  /// A stage traversed with the No-Op default only.
  double idle_stage_ns = 0.5;
  /// Cost of one trip through the recirculation path.
  double recirculation_ns = 5.6;

  /// Total processing latency for a packet that activated
  /// `active_stages` MATs, passed `idle_stages` as no-ops, and made
  /// `passes` trips through the pipeline.
  double LatencyNs(int active_stages, int idle_stages, int passes) const {
    return parser_ns + deparser_ns + active_stage_ns * active_stages +
           idle_stage_ns * idle_stages + recirculation_ns * (passes - 1);
  }
};

}  // namespace sfp::switchsim
