#include "switchsim/egress.h"

#include <algorithm>
#include <limits>

namespace sfp::switchsim {

EgressPort::EgressPort(int num_classes, double line_rate_gbps,
                       std::uint64_t queue_capacity_bytes)
    : line_rate_gbps_(line_rate_gbps),
      queue_capacity_bytes_(queue_capacity_bytes),
      queues_(static_cast<std::size_t>(num_classes)),
      stats_(static_cast<std::size_t>(num_classes)),
      backlog_bytes_(static_cast<std::size_t>(num_classes), 0) {
  SFP_CHECK_GT(num_classes, 0);
  SFP_CHECK_GT(line_rate_gbps, 0.0);
}

void EgressPort::Serve(double horizon_ns) {
  for (;;) {
    if (server_free_ns_ > horizon_ns) return;
    // Highest non-empty priority.
    int chosen = -1;
    for (int c = static_cast<int>(queues_.size()) - 1; c >= 0; --c) {
      if (!queues_[static_cast<std::size_t>(c)].empty()) {
        chosen = c;
        break;
      }
    }
    if (chosen < 0) return;
    auto& queue = queues_[static_cast<std::size_t>(chosen)];
    const Waiting packet = queue.front();
    // Non-preemptive: service starts when the server frees up (but not
    // before the packet arrived). Service must begin strictly before
    // the horizon, so a packet arriving at time t still occupies its
    // queue's buffer when the clock is exactly t.
    const double start = std::max(server_free_ns_, packet.arrival_ns);
    if (start >= horizon_ns) return;
    queue.pop_front();
    backlog_bytes_[static_cast<std::size_t>(chosen)] -= packet.bytes;
    const double finish = start + TransmitNs(packet.bytes);
    server_free_ns_ = finish;

    QueueStats& s = stats_[static_cast<std::size_t>(chosen)];
    ++s.served;
    const double wait = start - packet.arrival_ns;
    s.total_wait_ns += wait;
    s.max_wait_ns = std::max(s.max_wait_ns, wait);
    departures_.push_back(Departure{packet.id, static_cast<std::uint8_t>(chosen),
                                    packet.arrival_ns, finish});
  }
}

std::optional<std::uint64_t> EgressPort::Enqueue(double arrival_ns, std::uint32_t bytes,
                                                 std::uint8_t flow_class) {
  SFP_CHECK_LT(flow_class, queues_.size());
  SFP_CHECK_GE(arrival_ns, clock_ns_);
  clock_ns_ = arrival_ns;
  // Serve everything the port finished before this arrival.
  Serve(arrival_ns);

  QueueStats& s = stats_[flow_class];
  if (backlog_bytes_[flow_class] + bytes > queue_capacity_bytes_) {
    ++s.dropped;
    return std::nullopt;
  }
  ++s.enqueued;
  backlog_bytes_[flow_class] += bytes;
  const std::uint64_t id = next_id_++;
  queues_[flow_class].push_back(Waiting{id, bytes, arrival_ns});
  return id;
}

void EgressPort::DrainUntil(double time_ns) {
  SFP_CHECK_GE(time_ns, clock_ns_);
  clock_ns_ = time_ns;
  Serve(time_ns);
}

void EgressPort::DrainAll() { Serve(std::numeric_limits<double>::infinity()); }

std::vector<Departure> EgressPort::TakeDepartures() {
  std::vector<Departure> out;
  out.swap(departures_);
  return out;
}

std::uint64_t EgressPort::BacklogBytes() const {
  std::uint64_t total = 0;
  for (const auto b : backlog_bytes_) total += b;
  return total;
}

}  // namespace sfp::switchsim
