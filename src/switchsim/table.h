// Match-action table (MAT) of the switch simulator.
//
// A table declares a match key (a list of fields with match kinds),
// registers its actions as callbacks, and holds prioritized entries.
// Lookup semantics follow P4 targets: the highest-priority matching
// entry wins; among LPM fields the longest prefix wins; ties resolve to
// the earliest-installed entry. A miss applies the default action
// (SFP's physical NFs default to "No-Op": forward to the next stage,
// §IV).
//
// Concurrency: Apply/Lookup take a shared lock and the hit/miss
// counters are relaxed atomics, so many packets can traverse the table
// in parallel (the batched path of Pipeline::ProcessBatch) while entry
// installation/removal — tenant admission and departure — takes the
// lock exclusively, mirroring a switch ASIC's lock-free lookups with
// serialized control-plane writes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "switchsim/types.h"

namespace sfp::switchsim {

/// Action arguments are plain 64-bit words (P4 action data).
using ActionArgs = std::vector<std::uint64_t>;

/// Action implementation: mutates the packet and/or metadata.
using ActionFn = std::function<void(net::Packet&, PacketMeta&, const ActionArgs&)>;

/// Identifier of a registered action within one table.
using ActionId = std::int32_t;

/// Entry handle, unique within one table for its lifetime.
using EntryHandle = std::uint64_t;

/// Returned by AddEntry when the install fails (only possible under an
/// armed "switchsim.table.add_entry" fault plan; real inserts cannot
/// fail — memory admission is the stages' job).
inline constexpr EntryHandle kInvalidEntryHandle = 0;

/// One installed rule.
struct TableEntry {
  std::vector<FieldMatch> matches;  // parallel to the table's key spec
  ActionId action = 0;
  ActionArgs args;
  /// Higher priority wins on overlap (TCAM semantics).
  int priority = 0;
  /// Owning tenant (0 = infrastructure rule); enables bulk removal when
  /// a tenant's SFC is deallocated.
  std::uint16_t owner_tenant = 0;
  EntryHandle handle = 0;
};

/// A match-action table.
class MatchActionTable {
 public:
  MatchActionTable(std::string name, std::vector<MatchFieldSpec> key);

  /// Registers an action; the returned id is used in entries.
  ActionId RegisterAction(std::string name, ActionFn fn);

  /// Sets the miss behaviour. Without a default action a miss is a
  /// true no-op.
  void SetDefaultAction(ActionId action, ActionArgs args = {});

  /// Installs an entry; returns its handle, or kInvalidEntryHandle when
  /// the "switchsim.table.add_entry" fault point fires (injected
  /// transient install failure). `matches` must have one pattern per
  /// key field and `action` must be registered.
  EntryHandle AddEntry(std::vector<FieldMatch> matches, ActionId action,
                       ActionArgs args = {}, int priority = 0,
                       std::uint16_t owner_tenant = 0);

  /// Removes an entry by handle; returns false if unknown.
  bool RemoveEntry(EntryHandle handle);

  /// Removes all entries owned by `tenant`; returns the removal count.
  std::size_t RemoveTenantEntries(std::uint16_t tenant);

  /// Returns the winning entry for the packet, or nullptr on miss.
  /// The pointer is only stable until the next entry mutation; under
  /// concurrency prefer Apply, which holds the entry lock throughout.
  const TableEntry* Lookup(const net::Packet& packet, const PacketMeta& meta) const;

  /// Lookup + action execution (default action on miss). Returns true
  /// if an installed entry was hit.
  bool Apply(net::Packet& packet, PacketMeta& meta);

  const std::string& name() const { return name_; }
  const std::vector<MatchFieldSpec>& key() const { return key_; }
  std::size_t num_entries() const;
  /// Direct entry access for inspection/P4 emission; not synchronized —
  /// callers must not mutate the table concurrently.
  const std::vector<TableEntry>& entries() const { return entries_; }
  const std::vector<std::string>& action_names() const { return action_names_; }

  /// True if any key field needs TCAM (ternary/range).
  bool NeedsTcam() const;

  std::uint64_t hit_count() const { return hits_.Value(); }
  std::uint64_t miss_count() const { return misses_.Value(); }

 private:
  const TableEntry* LookupLocked(const net::Packet& packet, const PacketMeta& meta) const;

  std::string name_;
  std::vector<MatchFieldSpec> key_;
  std::vector<std::string> action_names_;
  std::vector<ActionFn> actions_;
  std::optional<std::pair<ActionId, ActionArgs>> default_action_;
  /// Guards entries_ (and default_action_/actions_ registration):
  /// packet lookups take it shared, so batch workers proceed in
  /// parallel; entry add/remove (tenant admission/departure) takes it
  /// exclusive.
  mutable std::shared_mutex entries_mutex_;
  std::vector<TableEntry> entries_;
  EntryHandle next_handle_ = 1;
  common::metrics::RelaxedCounter hits_;
  common::metrics::RelaxedCounter misses_;
};

}  // namespace sfp::switchsim
