// Match-action table (MAT) of the switch simulator.
//
// A table declares a match key (a list of fields with match kinds),
// registers its actions as callbacks, and holds prioritized entries.
// Lookup semantics follow P4 targets: the highest-priority matching
// entry wins; among LPM fields the longest prefix wins; ties resolve to
// the earliest-installed entry. A miss applies the default action
// (SFP's physical NFs default to "No-Op": forward to the next stage,
// §IV).
//
// Lookup is indexed, mirroring how the rules land in Tofino SRAM/TCAM
// (§IV, Fig. 4): every entry's exact-kind key fields form a concrete
// value tuple (SFP prefixes every physical NF key with the exact
// tenant-ID and recirculation-pass fields), so entries are bucketed in
// a hash map keyed by that tuple. Within a bucket, entries whose
// remaining (ternary/LPM/range) fields are all wildcards form the
// "pure" hash tier — their winner is precomputed, making the common
// SFP lookup O(1) — while the rest sit in a priority-sorted spill list
// that is scanned only for the packet's own bucket and abandoned as
// soon as no remaining spill entry can outrank the best candidate.
// Lookup cost is therefore independent of how many *other* tenants
// hold rules in the table. The pre-index linear scan is kept as
// LookupReference for the randomized equivalence suite.
//
// Concurrency: Apply/Lookup take a shared lock and the hit/miss
// counters are relaxed atomics, so many packets can traverse the table
// in parallel (the batched path of Pipeline::ProcessBatch) while entry
// installation/removal — tenant admission and departure — takes the
// lock exclusively, mirroring a switch ASIC's lock-free lookups with
// serialized control-plane writes. Every mutation bumps a per-table
// epoch counter; the flow decision cache (flow_cache.h) uses it to
// invalidate memoized decisions when the control plane changes the
// table.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "switchsim/types.h"

namespace sfp::switchsim {

/// Action arguments are plain 64-bit words (P4 action data).
using ActionArgs = std::vector<std::uint64_t>;

/// Action implementation: mutates the packet and/or metadata.
using ActionFn = std::function<void(net::Packet&, PacketMeta&, const ActionArgs&)>;

/// Identifier of a registered action within one table.
using ActionId = std::int32_t;

/// Entry handle, unique within one table for its lifetime. Handles are
/// issued in install order, so "earliest installed" == smallest handle.
using EntryHandle = std::uint64_t;

/// Returned by AddEntry when the install fails (only possible under an
/// armed "switchsim.table.add_entry" fault plan; real inserts cannot
/// fail — memory admission is the stages' job).
inline constexpr EntryHandle kInvalidEntryHandle = 0;

/// Upper bound on key fields per table (fits every NF key plus the
/// (tenant, pass) prefix with room to spare).
inline constexpr std::size_t kMaxKeyFields = 16;

class FlowDecisionCache;

/// One installed rule.
struct TableEntry {
  std::vector<FieldMatch> matches;  // parallel to the table's key spec
  ActionId action = 0;
  ActionArgs args;
  /// Higher priority wins on overlap (TCAM semantics).
  int priority = 0;
  /// Owning tenant (0 = infrastructure rule); enables bulk removal when
  /// a tenant's SFC is deallocated.
  std::uint16_t owner_tenant = 0;
  EntryHandle handle = 0;
};

/// A match-action table.
class MatchActionTable {
 public:
  MatchActionTable(std::string name, std::vector<MatchFieldSpec> key);

  /// Registers an action; the returned id is used in entries.
  ActionId RegisterAction(std::string name, ActionFn fn);

  /// Sets the miss behaviour. Without a default action a miss is a
  /// true no-op.
  void SetDefaultAction(ActionId action, ActionArgs args = {});

  /// Installs an entry; returns its handle, or kInvalidEntryHandle when
  /// the "switchsim.table.add_entry" fault point fires (injected
  /// transient install failure). `matches` must have one pattern per
  /// key field and `action` must be registered.
  EntryHandle AddEntry(std::vector<FieldMatch> matches, ActionId action,
                       ActionArgs args = {}, int priority = 0,
                       std::uint16_t owner_tenant = 0);

  /// Removes an entry by handle; returns false if unknown.
  bool RemoveEntry(EntryHandle handle);

  /// Removes all entries owned by `tenant`; returns the removal count.
  std::size_t RemoveTenantEntries(std::uint16_t tenant);

  /// Returns the winning entry for the packet, or nullptr on miss.
  /// The pointer is only stable until the next entry mutation; under
  /// concurrency prefer Apply, which holds the entry lock throughout.
  const TableEntry* Lookup(const net::Packet& packet, const PacketMeta& meta) const;

  /// Reference implementation: the original linear scan over all
  /// entries in install order. Semantically identical to Lookup by
  /// construction; kept (and exercised by the randomized equivalence
  /// suite) as the oracle the indexed path is proven against.
  const TableEntry* LookupReference(const net::Packet& packet,
                                    const PacketMeta& meta) const;

  /// Lookup + action execution (default action on miss). Returns true
  /// if an installed entry was hit. When `cache` is non-null the
  /// resolved decision is memoized per (table, key tuple) and replayed
  /// while the table's epoch is unchanged (see flow_cache.h); results
  /// and counters are bit-identical either way.
  bool Apply(net::Packet& packet, PacketMeta& meta, FlowDecisionCache* cache = nullptr);

  const std::string& name() const { return name_; }
  const std::vector<MatchFieldSpec>& key() const { return key_; }
  std::size_t num_entries() const;
  /// Direct entry access for inspection/P4 emission; not synchronized —
  /// callers must not mutate the table concurrently.
  const std::vector<TableEntry>& entries() const { return entries_; }
  const std::vector<std::string>& action_names() const { return action_names_; }

  /// True if any key field needs TCAM (ternary/range).
  bool NeedsTcam() const;

  std::uint64_t hit_count() const { return hits_.Value(); }
  std::uint64_t miss_count() const { return misses_.Value(); }
  /// Misses that executed the default action (the "default no-op"
  /// served the packet, as opposed to a true no-rule miss). Disjoint
  /// accounting: every Apply is a hit, a default hit, or a bare miss;
  /// default_hit_count() <= miss_count().
  std::uint64_t default_hit_count() const { return default_hits_.Value(); }

  /// Mutation epoch: bumped by every AddEntry/RemoveEntry/
  /// RemoveTenantEntries/SetDefaultAction that changes the table.
  /// Cached decisions stamped with an older epoch are invalid.
  std::uint64_t epoch() const { return epoch_.Value(); }

  /// Optional pipeline-wide mutation counter, bumped alongside this
  /// table's own epoch. Compiled plans use it as a one-load fast path
  /// for per-packet staleness checks (see CompiledPlan::Validate);
  /// tables created outside a pipeline simply leave it unset.
  void SetSharedEpoch(common::metrics::RelaxedCounter* shared) { shared_epoch_ = shared; }

  /// Consistent copy of everything the pipeline compiler lifts: the
  /// entries, the registered action callbacks and names, the default
  /// action, and the epoch the copy was taken at. Taken under the
  /// shared entry lock, so it can run concurrently with packet serving
  /// but never observes a half-applied mutation.
  struct CompileSnapshot {
    std::vector<TableEntry> entries;
    std::vector<ActionFn> actions;
    std::vector<std::string> action_names;
    std::optional<std::pair<ActionId, ActionArgs>> default_action;
    std::uint64_t epoch = 0;
  };
  CompileSnapshot Snapshot() const;

  /// Batched counter commit for the compiled serve path: adds worker-
  /// buffered hit/miss/default-hit sums in one call each. Totals stay
  /// bit-identical to per-Apply bumps because the counts are plain
  /// integer sums.
  void AddApplyCounts(std::uint64_t hits, std::uint64_t misses,
                      std::uint64_t default_hits);

 private:
  /// Per exact-key-tuple bucket of the lookup index. Values index
  /// entries_; they are maintained incrementally on AddEntry and
  /// rebuilt wholesale on removal (control-plane slow path).
  struct Bucket {
    /// Winning "pure" entry (all non-exact fields wildcard): highest
    /// priority, earliest handle. npos = none.
    std::size_t pure = npos;
    /// Entries with at least one concrete ternary/LPM/range field,
    /// sorted by (priority desc, handle asc).
    std::vector<std::size_t> spill;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  };

  /// Transparent hash/equality so packet lookups can probe the index
  /// with a stack-array span — no per-packet key vector on the serve
  /// path (insertions still store owning vectors).
  struct ExactKeyHash {
    using is_transparent = void;
    std::size_t operator()(std::span<const std::uint64_t> key) const;
  };
  struct ExactKeyEqual {
    using is_transparent = void;
    bool operator()(std::span<const std::uint64_t> a,
                    std::span<const std::uint64_t> b) const {
      return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }
  };

  const TableEntry* LookupIndexedLocked(const std::uint64_t* values) const;
  const TableEntry* LookupReferenceLocked(const std::uint64_t* values) const;
  void ExtractKey(const net::Packet& packet, const PacketMeta& meta,
                  std::uint64_t* values) const;
  /// True if `entry` qualifies for the pure hash tier (every non-exact
  /// key field is a full wildcard).
  bool IsPureEntry(const TableEntry& entry) const;
  /// True if `entry` wildcards at least one exact-kind key field
  /// (mask == 0, the FieldMatch::Any() signature) and therefore lives
  /// in wildcard_spill_ instead of the value-hashed index.
  bool HasWildcardExact(const TableEntry& entry) const;
  std::vector<std::uint64_t> ExactKeyOf(const TableEntry& entry) const;
  /// Adds entries_[index] to the index (incremental insert).
  void IndexEntryLocked(std::size_t index);
  /// Rebuilds the whole index from entries_ (after removals).
  void RebuildIndexLocked();
  /// Sum of LPM prefix lengths of `entry` restricted to fields that
  /// match — the tie-break score of the documented semantics.
  int PrefixScore(const TableEntry& entry) const;

  std::string name_;
  std::vector<MatchFieldSpec> key_;
  /// Indices into key_ of the exact-kind fields (the index key).
  std::vector<std::size_t> exact_fields_;
  /// Indices into key_ of the remaining (ternary/LPM/range) fields.
  std::vector<std::size_t> nonexact_fields_;
  std::vector<std::string> action_names_;
  std::vector<ActionFn> actions_;
  std::optional<std::pair<ActionId, ActionArgs>> default_action_;
  /// Guards entries_, index_ (and default_action_/actions_
  /// registration): packet lookups take it shared, so batch workers
  /// proceed in parallel; entry add/remove (tenant admission and
  /// departure) takes it exclusive.
  mutable std::shared_mutex entries_mutex_;
  std::vector<TableEntry> entries_;
  std::unordered_map<std::vector<std::uint64_t>, Bucket, ExactKeyHash, ExactKeyEqual>
      index_;
  /// Entries that wildcard at least one exact-kind key field
  /// (FieldMatch::Any(), mask == 0) cannot live in the value-hashed
  /// index: they must match *every* probe value for that field. They
  /// sit in this side tier, sorted by (priority desc, handle asc), and
  /// are scanned after the bucket with full-key verification. The tier
  /// is expected to stay tiny — the data plane only puts per-(tenant,
  /// pass) recirculation catch-alls here — and because such entries
  /// carry deeply negative priority, the priority-sorted early break
  /// makes the scan O(1) whenever any real rule matched.
  std::vector<std::size_t> wildcard_spill_;
  EntryHandle next_handle_ = 1;
  common::metrics::RelaxedCounter hits_;
  common::metrics::RelaxedCounter misses_;
  common::metrics::RelaxedCounter default_hits_;
  common::metrics::RelaxedCounter epoch_;
  common::metrics::RelaxedCounter* shared_epoch_ = nullptr;

  /// Single bump site: the table's own epoch plus the pipeline-wide
  /// counter when attached. The release fence pairs with the acquire
  /// fence in CompiledPlan::Validate: a reader that observes the
  /// shared bump is guaranteed to also observe this table's epoch
  /// bump, so the one-load fast path can never cache a stale verdict.
  void BumpEpoch() {
    epoch_.Add(1);
    if (shared_epoch_ != nullptr) {
      std::atomic_thread_fence(std::memory_order_release);
      shared_epoch_->Add(1);
    }
  }
};

}  // namespace sfp::switchsim
