#include "switchsim/types.h"

#include "common/check.h"

namespace sfp::switchsim {

const char* FieldName(FieldId field) {
  switch (field) {
    case FieldId::kTenantId:
      return "meta.tenant_id";
    case FieldId::kPass:
      return "meta.pass";
    case FieldId::kSrcIp:
      return "hdr.ipv4.srcAddr";
    case FieldId::kDstIp:
      return "hdr.ipv4.dstAddr";
    case FieldId::kSrcPort:
      return "hdr.l4.srcPort";
    case FieldId::kDstPort:
      return "hdr.l4.dstPort";
    case FieldId::kIpProto:
      return "hdr.ipv4.protocol";
    case FieldId::kDscp:
      return "hdr.ipv4.dscp";
    case FieldId::kFlowClass:
      return "meta.flow_class";
    case FieldId::kEthType:
      return "hdr.ethernet.etherType";
  }
  return "unknown";
}

const char* DropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kNone:
      return "none";
    case DropReason::kNfAction:
      return "nf-action";
    case DropReason::kRecirculationGuard:
      return "recirculation-guard";
    case DropReason::kRecirculationOverload:
      return "recirculation-overload";
    case DropReason::kInjectedFault:
      return "injected-fault";
  }
  return "unknown";
}

FieldMatch FieldMatch::Any() {
  FieldMatch m;
  m.mask = 0;          // ternary: matches everything
  m.prefix_len = 0;    // lpm: default route
  m.lo = 0;
  m.hi = ~0ULL;        // range: full span
  return m;
}

FieldMatch FieldMatch::Exact(std::uint64_t v) {
  FieldMatch m;
  m.value = v;
  return m;
}

FieldMatch FieldMatch::Ternary(std::uint64_t v, std::uint64_t mask) {
  FieldMatch m;
  m.value = v;
  m.mask = mask;
  return m;
}

FieldMatch FieldMatch::Lpm(std::uint64_t v, int prefix_len) {
  SFP_CHECK_GE(prefix_len, 0);
  SFP_CHECK_LE(prefix_len, 32);
  FieldMatch m;
  m.value = v;
  m.prefix_len = prefix_len;
  return m;
}

FieldMatch FieldMatch::Range(std::uint64_t lo, std::uint64_t hi) {
  SFP_CHECK_LE(lo, hi);
  FieldMatch m;
  m.lo = lo;
  m.hi = hi;
  return m;
}

std::uint64_t GetField(const net::Packet& packet, const PacketMeta& meta, FieldId field) {
  switch (field) {
    case FieldId::kTenantId:
      return meta.tenant_id;
    case FieldId::kPass:
      return meta.pass;
    case FieldId::kSrcIp:
      return packet.ipv4 ? packet.ipv4->src.value : 0;
    case FieldId::kDstIp:
      return packet.ipv4 ? packet.ipv4->dst.value : 0;
    case FieldId::kSrcPort:
      return packet.Tuple().src_port;
    case FieldId::kDstPort:
      return packet.Tuple().dst_port;
    case FieldId::kIpProto:
      return packet.ipv4 ? packet.ipv4->protocol : 0;
    case FieldId::kDscp:
      return packet.ipv4 ? packet.ipv4->dscp : 0;
    case FieldId::kFlowClass:
      return meta.flow_class;
    case FieldId::kEthType:
      return packet.eth.ether_type;
  }
  return 0;
}

bool FieldMatches(const FieldMatch& match, MatchKind kind, std::uint64_t value) {
  switch (kind) {
    case MatchKind::kExact:
      // mask == 0 is the FieldMatch::Any() signature: an exact-kind
      // field can be wildcarded (used by the data plane's per-pass
      // catch-alls on NFs whose own key is exact, e.g. NAT/LB).
      return match.mask == 0 || value == match.value;
    case MatchKind::kTernary:
      return (value & match.mask) == (match.value & match.mask);
    case MatchKind::kLpm: {
      // 32-bit LPM: prefix mask over the low 32 bits.
      if (match.prefix_len == 0) return true;
      const std::uint64_t mask32 =
          match.prefix_len >= 32 ? 0xFFFFFFFFULL
                                 : (0xFFFFFFFFULL << (32 - match.prefix_len)) & 0xFFFFFFFFULL;
      return (value & mask32) == (match.value & mask32);
    }
    case MatchKind::kRange:
      return value >= match.lo && value <= match.hi;
  }
  return false;
}

}  // namespace sfp::switchsim
