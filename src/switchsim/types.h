// Core types of the programmable-switch simulator.
//
// The simulator models a Tofino-like ingress pipeline: a parser, S
// physical stages of Match-Action Units (MAUs), a deparser, and a
// recirculation path that re-injects a packet at stage 0 with its
// metadata `pass` incremented (§IV: "the last hop of each pass
// recirculating the traffic").
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.h"

namespace sfp::switchsim {

/// Match fields the MAUs can inspect. kTenantId and kPass are the two
/// fields SFP prepends to every physical NF's match block (§IV
/// "Install Physical NFs").
enum class FieldId : std::uint8_t {
  kTenantId,   // VLAN VID (metadata copy)
  kPass,       // recirculation pass counter (metadata)
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kIpProto,
  kDscp,
  kFlowClass,  // metadata written by the traffic classifier
  kEthType,
};

/// Human-readable field name (for P4 emission and debugging).
const char* FieldName(FieldId field);

/// Match kinds supported by the MAU memories. Exact and LPM entries
/// live in SRAM; ternary and range entries live in TCAM.
enum class MatchKind : std::uint8_t { kExact, kTernary, kLpm, kRange };

/// One field of a table's match key.
struct MatchFieldSpec {
  FieldId field;
  MatchKind kind;
};

/// A concrete match pattern for one field of an entry.
struct FieldMatch {
  /// kExact: value; kTernary: value/mask; kLpm: value/prefix_len;
  /// kRange: [lo, hi] inclusive.
  std::uint64_t value = 0;
  std::uint64_t mask = ~0ULL;   // ternary
  int prefix_len = 32;          // lpm
  std::uint64_t lo = 0, hi = 0; // range

  /// Wildcard that matches anything (ternary mask 0 / range full).
  static FieldMatch Any();
  /// Exact-value match.
  static FieldMatch Exact(std::uint64_t v);
  /// Ternary value/mask match.
  static FieldMatch Ternary(std::uint64_t v, std::uint64_t m);
  /// Longest-prefix match on a 32-bit field.
  static FieldMatch Lpm(std::uint64_t v, int prefix_len);
  /// Inclusive range match.
  static FieldMatch Range(std::uint64_t lo, std::uint64_t hi);
};

/// Why a packet was dropped. NF actions that drop (firewall deny,
/// rate-limit, ...) leave the reason at kNone and the pipeline
/// normalizes it to kNfAction; the other reasons are set by the
/// pipeline itself.
enum class DropReason : std::uint8_t {
  kNone = 0,
  /// An NF action dropped the packet (deny rule, rate limit, ...).
  kNfAction,
  /// The packet requested recirculation past the max_passes guard and
  /// SwitchConfig::drop_on_recirculation_guard is set.
  kRecirculationGuard,
  /// The recirculation-port overload model rejected the pass (offered
  /// recirculation bandwidth above the port's capacity).
  kRecirculationOverload,
  /// The "switchsim.pipeline.serve" fault point fired (chaos testing).
  kInjectedFault,
};

/// Human-readable drop reason ("nf-action", "recirculation-guard", ...).
const char* DropReasonName(DropReason reason);

/// Per-packet metadata carried through the pipeline (the paper's packet
/// metadata: recirculation pass, plus scratch written by NFs).
struct PacketMeta {
  std::uint16_t tenant_id = 0;
  /// Recirculation pass, starting at 0 and incremented by the REC
  /// action of the last stage (§IV).
  std::uint8_t pass = 0;
  /// Classifier output (0 = unclassified).
  std::uint8_t flow_class = 0;
  bool dropped = false;
  /// Why the packet was dropped (kNone while dropped is false; set by
  /// the pipeline — kNfAction when an NF action dropped it).
  DropReason drop_reason = DropReason::kNone;
  /// Set by an action to request recirculation at end of pipeline.
  bool recirculate = false;
  /// Egress port selected by the router (-1 = unset).
  std::int32_t egress_port = -1;
  /// Scratch register for NF actions (e.g. selected backend index).
  std::uint64_t scratch = 0;
  /// Ingress timestamp in nanoseconds, set by the traffic source; used
  /// by stateful NFs such as the rate limiter's token buckets.
  double time_ns = 0.0;
};

/// Extracts the value of `field` from packet + metadata.
std::uint64_t GetField(const net::Packet& packet, const PacketMeta& meta, FieldId field);

/// Tests a single field pattern against a value.
bool FieldMatches(const FieldMatch& match, MatchKind kind, std::uint64_t value);

}  // namespace sfp::switchsim
